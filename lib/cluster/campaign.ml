type config = {
  nodes : int;
  vms_per_node : int;
  vm_ram : Hw.Units.bytes_;
  node_ram : Hw.Units.bytes_;
  inplace_fraction : float;
  concurrency : int;
  straggler_factor : float;
  breaker_window : int;
  breaker_threshold : float;
  breaker_cooldown : Sim.Time.t;
  jitter_pct : float;
  drain_flakiness : float;
  retry_flakiness : float;
  seed : int64;
  shadow_spares : int;
}

let default_config =
  {
    nodes = 10;
    vms_per_node = 10;
    vm_ram = Hw.Units.gib 4;
    node_ram = Hw.Units.gib 96;
    inplace_fraction = 1.0;
    concurrency = 4;
    straggler_factor = 2.0;
    breaker_window = 5;
    breaker_threshold = 0.4;
    breaker_cooldown = Sim.Time.sec 120;
    jitter_pct = 0.05;
    drain_flakiness = 0.25;
    retry_flakiness = 0.25;
    seed = 0x5EEDL;
    shadow_spares = 0;
  }

type ladder_step = Inplace | Shadow | Drain | Retry

type manifestation = Crash | Timeout | Flap

type event =
  | Admitted of ladder_step
  | Flap_failure
  | Straggler_cancelled
  | Attempt_failed of { step : ladder_step; manifestation : manifestation }
  | Attempt_completed of ladder_step
  | Deferred
  | Breaker_opened
  | Breaker_half_opened
  | Breaker_closed
  | Campaign_finished

type host_status =
  | Upgraded_inplace
  | Shadow_cutover
  | Drained
  | Deferred_resolved
  | Deferred_exposed

type audit_verdict = A_clean | A_scrubbed | A_failed

type host_record = {
  hr_node : string;
  hr_vms_in_place : int;
  hr_drain_migrations : int;
  hr_status : host_status;
  hr_attempts : int;
  hr_manifestations : manifestation list;
  hr_timeline : (Sim.Time.t * event) list;
  hr_expected : Sim.Time.t;
  hr_done_at : Sim.Time.t;
  hr_exposure_hours : float;
  hr_audit : audit_verdict option;
}

type report = {
  cfg : config;
  base : Upgrade.timing;
  effective_concurrency : int;
  hosts : host_record list;
  wall_clock : Sim.Time.t;
  rebalance_time : Sim.Time.t;
  exposed_host_hours : float;
  baseline_exposed_host_hours : float;
  deferred : string list;
  deferred_exposure_hours : float;
  breaker_trips : int;
  vms_total : int;
  vms_inplace_ok : int;
  vms_shadow : int;
  vms_drained : int;
  vms_on_deferred : int;
  vms_migrated_planned : int;
  audit_verdicts : (string * audit_verdict) list;
}

let vms_accounted r =
  r.vms_inplace_ok + r.vms_shadow + r.vms_drained + r.vms_on_deferred
  + r.vms_migrated_planned

(* Manifestation timing, as fractions of the attempt's expected duration.
   The cost order timeout > flap > crash is what makes the governing
   manifestation the costliest one: the straggler deadline is at least
   [1.2 x expected] (validated), the second flap leg fails at 1.1x, a
   plain crash at 0.5x, and a jittered success lands within 1.1x. *)
let crash_frac = 0.5
let flap_leg1_frac = 0.55
let flap_final_frac = 1.10
let drain_fail_frac = 0.6
let retry_fail_frac = 0.5
let shadow_fail_frac = 0.6

let min_straggler_factor = 1.2
let max_jitter_pct = 0.1

let validate_config cfg =
  let bad msg = Hypertp_error.raise_error ~site:"Campaign" msg in
  if cfg.nodes < 2 then bad "need at least 2 nodes";
  if cfg.vms_per_node < 1 then bad "vms_per_node must be at least 1";
  if cfg.inplace_fraction < 0.0 || cfg.inplace_fraction > 1.0 then
    bad "inplace_fraction outside [0, 1]";
  if cfg.concurrency < 1 then bad "concurrency must be at least 1";
  if cfg.straggler_factor < min_straggler_factor then
    bad "straggler_factor below 1.2 (deadline must dominate a flap)";
  if cfg.breaker_window < 1 then bad "breaker_window must be at least 1";
  if cfg.breaker_window > 62 then
    bad "breaker_window above 62 (outcomes are tracked in one word)";
  if cfg.breaker_threshold < 0.0 || cfg.breaker_threshold > 1.0 then
    bad "breaker_threshold outside [0, 1]";
  if cfg.jitter_pct < 0.0 || cfg.jitter_pct > max_jitter_pct then
    bad "jitter_pct outside [0, 0.1] (success must beat the deadline)";
  if cfg.drain_flakiness < 0.0 || cfg.drain_flakiness > 1.0 then
    bad "drain_flakiness outside [0, 1]";
  if cfg.retry_flakiness < 0.0 || cfg.retry_flakiness > 1.0 then
    bad "retry_flakiness outside [0, 1]";
  if cfg.shadow_spares < 0 then bad "shadow_spares must be non-negative"

(* --- derived per-host randomness, independent of the fault plan --- *)

let derived cfg salt node =
  Sim.Rng.create
    (Int64.logxor cfg.seed (Int64.of_int (Hashtbl.hash (salt, node))))

let coin cfg salt node p = Sim.Rng.float (derived cfg salt node) 1.0 < p
let host_jitter cfg node = Sim.Rng.jitter (derived cfg "jitter" node) cfg.jitter_pct

(* --- host tasks, derived once from the BtrPlace plan --- *)

type task = {
  t_index : int;
  t_node : string;
  t_vms_in_place : int;
  t_drain_migs : int;
  t_up : Sim.Time.t;       (* the InPlaceTP upgrade part alone *)
  t_expected : Sim.Time.t; (* pre-migrations + upgrade *)
  t_deadline : Sim.Time.t; (* straggler_factor x expected *)
  t_drain : Sim.Time.t;    (* fallback: drain whole placement + reboot *)
  t_shadow : Sim.Time.t;   (* fallback: pre-stage a spare + stream the
                              whole placement (no source reboot) *)
}

type setup = {
  su_tasks : task array; (* in plan (= admission) order *)
  su_index : (string, int) Hashtbl.t;
  su_names : string array; (* task index -> node name (journal intern table) *)
  su_base : Upgrade.timing;
  su_rebalance : Sim.Time.t;
  su_effective : int;
}

let paper_mix =
  [ (Vmstate.Vm.Wl_streaming, 0.3); (Vmstate.Vm.Wl_spec "mcf", 0.3);
    (Vmstate.Vm.Wl_idle, 0.4) ]

let build_setup cfg =
  let nic = Hw.Nic.create ~bandwidth_gbps:10.0 () in
  let model =
    Model.make ~nodes:cfg.nodes ~vms_per_node:cfg.vms_per_node
      ~vm_ram:cfg.vm_ram ~node_ram:cfg.node_ram
      ~inplace_fraction:cfg.inplace_fraction ~workload_mix:paper_mix ()
  in
  (* Snapshot what rides through on each host before the planner mutates
     the model, and size the admission bound on the initial placement.
     Hashtbl-indexed: the per-action lookups below used to walk an
     assoc list, O(hosts) per host. *)
  let keepers = Hashtbl.create (Stdlib.max 16 cfg.nodes) in
  List.iter
    (fun n ->
      Hashtbl.replace keepers n.Model.node_name
        (List.filter (fun v -> v.Model.inplace_compatible) n.Model.placed))
    model.Model.nodes;
  let max_drains = Btrplace.max_concurrent_drains model in
  let plan = Btrplace.plan_upgrade model in
  let base = Upgrade.execute ~nic plan in
  let mig vm = Upgrade.migration_op_time ~nic ~vm in
  let upgraded = Hashtbl.create (Stdlib.max 16 cfg.nodes) in
  let drains = Hashtbl.create (Stdlib.max 16 cfg.nodes) in
  let rebalance = ref Sim.Time.zero in
  let tasks = ref [] in
  let ntasks = ref 0 in
  Array.iter
    (fun action ->
      match action with
      | Btrplace.Migrate { vm; src; _ } ->
        if Hashtbl.mem upgraded src then
          rebalance := Sim.Time.add !rebalance (mig vm)
        else
          Hashtbl.replace drains src
            (vm :: Option.value ~default:[] (Hashtbl.find_opt drains src))
      | Btrplace.Upgrade_inplace { node; vms_in_place } ->
        Hashtbl.replace upgraded node ();
        let riding =
          Option.value ~default:[] (Hashtbl.find_opt keepers node)
        in
        let evacuated =
          List.rev (Option.value ~default:[] (Hashtbl.find_opt drains node))
        in
        let premig = Sim.Time.sum (List.map mig evacuated) in
        let up =
          if vms_in_place > 0 then Upgrade.inplace_host_time ~vms:vms_in_place
          else Upgrade.reboot_host_time
        in
        let expected = Sim.Time.add premig up in
        let deadline =
          Sim.Time.of_sec_f
            (Hypertp.Costs.straggler_deadline_seconds
               ~factor:cfg.straggler_factor
               ~expected:(Sim.Time.to_sec_f expected))
        in
        (* The fallback drain must clear whatever is still on the host
           when the attempt died: evacuees plus the riding VMs. *)
        let stream = Sim.Time.sum (List.map mig (evacuated @ riding)) in
        let drain = Sim.Time.add stream Upgrade.reboot_host_time in
        (* Shadow fallback: stage the target on a spare (boot plus the
           per-VM skeleton pre-restore) while the source serves, then
           stream the whole placement.  No source reboot — the host is
           retired by the identity swap. *)
        let shadow =
          Sim.Time.add stream
            (Sim.Time.of_sec_f
               (Hypertp.Costs.shadow_stage_seconds ~boot_seconds:20.0
                  ~vms:(List.length evacuated + List.length riding)))
        in
        tasks :=
          {
            t_index = !ntasks;
            t_node = node;
            t_vms_in_place = vms_in_place;
            t_drain_migs = List.length evacuated;
            t_up = up;
            t_expected = expected;
            t_deadline = deadline;
            t_drain = drain;
            t_shadow = shadow;
          }
          :: !tasks;
        incr ntasks
      | Btrplace.Take_offline _ | Btrplace.Bring_online _ -> ())
    plan.Btrplace.actions;
  let su_tasks = Array.of_list (List.rev !tasks) in
  let su_index = Hashtbl.create (Array.length su_tasks) in
  Array.iter (fun t -> Hashtbl.replace su_index t.t_node t.t_index) su_tasks;
  {
    su_tasks;
    su_index;
    su_names = Array.map (fun t -> t.t_node) su_tasks;
    su_base = base;
    su_rebalance = !rebalance;
    su_effective = Stdlib.max 1 (Stdlib.min cfg.concurrency max_drains);
  }

(* --- journal --- *)

type decision = { d_flap : bool; d_crash : bool; d_timeout : bool }

(* Fault-plan decisions for a shadow admission, one per shadow site, in
   the fixed consultation order (spare, stage, drop, diverge,
   partition).  Journaled like the in-place [decision] so resume can
   re-fire and validate them. *)
type shadow_decision = {
  s_spare : bool;
  s_stage : bool;
  s_drop : bool;
  s_diverge : bool;
  s_partition : bool;
}

let shadow_failed s =
  s.s_spare || s.s_stage || s.s_drop || s.s_diverge || s.s_partition

let verdict_to_string = function
  | A_clean -> "clean"
  | A_scrubbed -> "scrubbed"
  | A_failed -> "failed"

let verdict_of_string = function
  | "clean" -> Some A_clean
  | "scrubbed" -> Some A_scrubbed
  | "failed" -> Some A_failed
  | _ -> None

type entry = {
  je_at : Sim.Time.t;
  je_host : string option;
  je_event : event;
  je_decision : decision option; (* Some iff Admitted Inplace *)
  je_audit : audit_verdict option;
      (* Some iff Attempt_completed Inplace/Retry with audit sites armed *)
  je_shadow : shadow_decision option;
      (* Some iff Admitted Shadow with shadow sites armed *)
  je_cursor : int; (* fault-plan trace length after this entry *)
}

(* Journal entries are stored packed, three unboxed ints per entry, in
   one [int Sim.Vec]; hosts are interned in a side table.  The [entry]
   record above survives only as the transient decoded form handed to
   [apply]/serialisation.  At a million hosts the journal dominates the
   controller's allocation, and the packed form costs 3 minor words per
   entry against the ~18 the boxed record chain used to (record + four
   option/variant boxes + host string pointer), with no change to the
   serialised format.

   Word 0 — the event time in ns.
   Word 1 — a bitfield:
     bits  0-3   event kind (0 adm, 1 flapleg, 2 strag, 3 fail, 4 done,
                 5 defer, 6 bopen, 7 bhalf, 8 bclosed, 9 fin)
     bits  4-5   ladder step (inplace 0, shadow 1, drain 2, retry 3)
     bits  6-7   manifestation (crash 0, timeout 1, flap 2)
     bit   8     decision present
     bits  9-11  d_flap / d_crash / d_timeout
     bits 12-13  audit (0 none, 1 clean, 2 scrubbed, 3 failed)
     bit  14     shadow decision present
     bits 15-19  s_spare / s_stage / s_drop / s_diverge / s_partition
     bits 20-..  host index + 1 (0 = no host)
   Word 2 — the fault-plan cursor after the entry. *)
type journal = {
  j_config : config;
  j_words : int Sim.Vec.t; (* 3 words per entry, chronological *)
  j_names : string array;  (* host index -> name *)
}

let journal_config j = j.j_config
let journal_length j = Sim.Vec.length j.j_words / 3

let step_to_int = function Inplace -> 0 | Shadow -> 1 | Drain -> 2 | Retry -> 3
let step_of_int = function 0 -> Inplace | 1 -> Shadow | 2 -> Drain | _ -> Retry
let man_to_int = function Crash -> 0 | Timeout -> 1 | Flap -> 2
let man_of_int = function 0 -> Crash | 1 -> Timeout | _ -> Flap

let pack_entry ~host_idx e =
  let kind, step, man =
    match e.je_event with
    | Admitted s -> (0, step_to_int s, 0)
    | Flap_failure -> (1, 0, 0)
    | Straggler_cancelled -> (2, 0, 0)
    | Attempt_failed { step; manifestation } ->
      (3, step_to_int step, man_to_int manifestation)
    | Attempt_completed s -> (4, step_to_int s, 0)
    | Deferred -> (5, 0, 0)
    | Breaker_opened -> (6, 0, 0)
    | Breaker_half_opened -> (7, 0, 0)
    | Breaker_closed -> (8, 0, 0)
    | Campaign_finished -> (9, 0, 0)
  in
  let bit b v w = if v then w lor (1 lsl b) else w in
  let w = kind lor (step lsl 4) lor (man lsl 6) in
  let w =
    match e.je_decision with
    | None -> w
    | Some d ->
      bit 9 d.d_flap (bit 10 d.d_crash (bit 11 d.d_timeout (w lor (1 lsl 8))))
  in
  let w =
    match e.je_audit with
    | None -> w
    | Some v ->
      w
      lor ((match v with A_clean -> 1 | A_scrubbed -> 2 | A_failed -> 3)
          lsl 12)
  in
  let w =
    match e.je_shadow with
    | None -> w
    | Some s ->
      bit 15 s.s_spare
        (bit 16 s.s_stage
           (bit 17 s.s_drop
              (bit 18 s.s_diverge
                 (bit 19 s.s_partition (w lor (1 lsl 14))))))
  in
  let w = w lor ((host_idx + 1) lsl 20) in
  (Sim.Time.to_ns e.je_at, w, e.je_cursor)

let unpack_entry names w0 w1 w2 =
  let bit b = w1 land (1 lsl b) <> 0 in
  let step = step_of_int ((w1 lsr 4) land 3) in
  let event =
    match w1 land 0xf with
    | 0 -> Admitted step
    | 1 -> Flap_failure
    | 2 -> Straggler_cancelled
    | 3 -> Attempt_failed { step; manifestation = man_of_int ((w1 lsr 6) land 3) }
    | 4 -> Attempt_completed step
    | 5 -> Deferred
    | 6 -> Breaker_opened
    | 7 -> Breaker_half_opened
    | 8 -> Breaker_closed
    | _ -> Campaign_finished
  in
  {
    je_at = Sim.Time.ns w0;
    je_host =
      (match w1 lsr 20 with 0 -> None | i -> Some names.(i - 1));
    je_event = event;
    je_decision =
      (if bit 8 then
         Some { d_flap = bit 9; d_crash = bit 10; d_timeout = bit 11 }
       else None);
    je_audit =
      (match (w1 lsr 12) land 3 with
      | 0 -> None
      | 1 -> Some A_clean
      | 2 -> Some A_scrubbed
      | _ -> Some A_failed);
    je_shadow =
      (if bit 14 then
         Some
           { s_spare = bit 15; s_stage = bit 16; s_drop = bit 17;
             s_diverge = bit 18; s_partition = bit 19 }
       else None);
    je_cursor = w2;
  }

let journal_iter f j =
  let words = j.j_words in
  let n = Sim.Vec.length words / 3 in
  for k = 0 to n - 1 do
    f
      (unpack_entry j.j_names
         (Sim.Vec.get words (3 * k))
         (Sim.Vec.get words ((3 * k) + 1))
         (Sim.Vec.get words ((3 * k) + 2)))
  done

let journal_last j =
  match Sim.Vec.length j.j_words with
  | 0 -> None
  | n ->
    Some
      (unpack_entry j.j_names
         (Sim.Vec.get j.j_words (n - 3))
         (Sim.Vec.get j.j_words (n - 2))
         (Sim.Vec.get j.j_words (n - 1)))

(* --- controller state (shared between live execution and replay) --- *)

type running = {
  r_step : ladder_step;
  r_started : Sim.Time.t;
  r_decision : decision option;
  r_shadow : shadow_decision option;
  mutable r_flapped : bool;
}

type hstate =
  | H_pending
  | H_running of running
  | H_failed_needs_drain
  | H_failed_needs_defer
  | H_awaiting_retry
  | H_done of host_status * Sim.Time.t

type breaker = B_closed | B_open_until of Sim.Time.t | B_half_open

type st = {
  cfg : config;
  setup : setup;
  hstates : hstate array;
  manifests : manifestation list array; (* newest first *)
  attempts : int array;
  mutable breaker : breaker;
  (* Breaker outcome window, newest outcome in bit 0, [window_len]
     (<= breaker_window <= 62, validated) live bits.  Replaces the
     [bool list] + [take] pair, which allocated a fresh list on every
     attempt outcome. *)
  mutable window_bits : int;
  mutable window_len : int;
  mutable half_successes : int;
  mutable half_failed : bool;
  mutable trips : int;
  mutable limit : int;
  mutable running : int;
  mutable finished_at : Sim.Time.t option;
  entries : int Sim.Vec.t; (* packed, 3 words per entry, chronological *)
  (* Incremental bookkeeping so [settle] never rescans the host array:
     [next_pending] is a monotone admission cursor (admission is
     lowest-index-first and a host never returns to [H_pending], so
     every pending host sits at an index >= the cursor);
     [needs_drain] / [needs_defer] are work-lists pushed by
     [resolve_failure]; [retry_cursor] only advances during the retry
     phase, when no new [H_awaiting_retry] host can appear behind it;
     [n_done] counts terminal hosts; [exposure_acc] accumulates
     exposure hours as hosts finish (Deferred_exposed hosts are counted
     separately — they stay exposed until the campaign's wall clock). *)
  mutable next_pending : int;
  mutable needs_drain : int list;
  mutable needs_defer : int list;
  mutable retry_cursor : int;
  mutable n_done : int;
  mutable exposure_acc : float;
  mutable n_deferred_exposed : int;
  audits : audit_verdict option array;
      (* post-commit audit verdict of the host's successful attempt *)
  (* Shadow lane accounting: [spares_free] counts idle staged spares
     (a completed cutover frees its source as the next spare, so the
     lane returns on resolution either way); [shadow_tried] pins the
     degradation ladder — a host whose shadow attempt failed must fall
     through to drain, never shadow again. *)
  mutable spares_free : int;
  shadow_tried : bool array;
  fault : Fault.t option;
  obs : Obs.Tracer.t option;
  metrics : Obs.Metrics.t option;
  o_log : bool;
      (* info logging enabled when the state was built; cached so the
         hot path skips the per-event closure when nobody listens *)
  ospans : Obs.Span.t option array; (* open attempt span per host *)
  mutable root_span : Obs.Span.t option;
}

let make_st ?fault ?obs ?metrics cfg setup =
  let n = Array.length setup.su_tasks in
  let obs = Option.map Hypertp.Otrace.attach obs in
  {
    cfg;
    setup;
    hstates = Array.make n H_pending;
    manifests = Array.make n [];
    attempts = Array.make n 0;
    breaker = B_closed;
    window_bits = 0;
    window_len = 0;
    half_successes = 0;
    half_failed = false;
    trips = 0;
    limit = setup.su_effective;
    running = 0;
    finished_at = None;
    entries = Sim.Vec.create ~capacity:(Stdlib.max 16 (12 * n)) 0;
    next_pending = 0;
    needs_drain = [];
    needs_defer = [];
    retry_cursor = 0;
    n_done = 0;
    exposure_acc = 0.0;
    n_deferred_exposed = 0;
    audits = Array.make n None;
    spares_free = cfg.shadow_spares;
    shadow_tried = Array.make n false;
    fault;
    obs;
    metrics;
    o_log =
      (match Logs.Src.level Hypertp.Log.src with
      | Some (Logs.Info | Logs.Debug) -> true
      | Some (Logs.App | Logs.Error | Logs.Warning) | None -> false);
    ospans = Array.make n None;
    root_span =
      Hypertp.Otrace.start obs ~at:Sim.Time.zero ~track:"controller"
        ~attrs:
          [ ("engine", "campaign");
            ("hosts", string_of_int n);
            ("concurrency", string_of_int setup.su_effective) ]
        "campaign";
  }

let idx st host =
  match Hashtbl.find_opt st.setup.su_index host with
  | Some i -> i
  | None ->
    Hypertp_error.raise_errorf ~site:"Campaign"
      ~hint:"the journal must come from a campaign with the same config"
      "unknown host in journal: %s" host

let hours t = Sim.Time.to_sec_f t /. 3600.0

let push_window st ok =
  (match st.breaker with
  | B_half_open ->
    if ok then st.half_successes <- st.half_successes + 1
    else begin
      st.half_successes <- 0;
      st.half_failed <- true
    end
  | B_closed | B_open_until _ -> ());
  st.window_bits <-
    ((st.window_bits lsl 1) lor Bool.to_int ok)
    land ((1 lsl st.cfg.breaker_window) - 1);
  st.window_len <- Stdlib.min (st.window_len + 1) st.cfg.breaker_window

(* Failures in the window = live bits that are 0. *)
let window_fails st =
  let rec pop acc bits =
    if bits = 0 then acc else pop (acc + (bits land 1)) (bits lsr 1)
  in
  st.window_len - pop 0 st.window_bits

let resolve_failure st i manifestation at =
  st.running <- st.running - 1;
  st.manifests.(i) <- manifestation :: st.manifests.(i);
  match st.hstates.(i) with
  | H_running r -> (
    match r.r_step with
    | Inplace ->
      st.hstates.(i) <- H_failed_needs_drain;
      st.needs_drain <- i :: st.needs_drain;
      push_window st false
    | Shadow ->
      (* Degradation ladder: the staged spare is torn down (the lane
         returns) and the host falls through to the classic drain. *)
      st.spares_free <- st.spares_free + 1;
      st.hstates.(i) <- H_failed_needs_drain;
      st.needs_drain <- i :: st.needs_drain;
      push_window st false
    | Drain ->
      st.hstates.(i) <- H_failed_needs_defer;
      st.needs_defer <- i :: st.needs_defer;
      push_window st false
    | Retry ->
      st.hstates.(i) <- H_done (Deferred_exposed, at);
      st.n_done <- st.n_done + 1;
      st.n_deferred_exposed <- st.n_deferred_exposed + 1)
  | _ ->
    Hypertp_error.raise_error ~site:"Campaign"
      "failure recorded for a host not running"

let step_to_string = function
  | Inplace -> "inplace"
  | Shadow -> "shadow"
  | Drain -> "drain"
  | Retry -> "retry"

let man_to_string = function
  | Crash -> "crash"
  | Timeout -> "timeout"
  | Flap -> "flap"

let pp_event fmt = function
  | Admitted step -> Format.fprintf fmt "admitted(%s)" (step_to_string step)
  | Flap_failure -> Format.pp_print_string fmt "flap-leg (failed, recovered)"
  | Straggler_cancelled -> Format.pp_print_string fmt "straggler-cancelled"
  | Attempt_failed { step; manifestation } ->
    Format.fprintf fmt "failed(%s, %s)" (step_to_string step)
      (man_to_string manifestation)
  | Attempt_completed step ->
    Format.fprintf fmt "completed(%s)" (step_to_string step)
  | Deferred -> Format.pp_print_string fmt "deferred"
  | Breaker_opened -> Format.pp_print_string fmt "breaker-opened"
  | Breaker_half_opened -> Format.pp_print_string fmt "breaker-half-open"
  | Breaker_closed -> Format.pp_print_string fmt "breaker-closed"
  | Campaign_finished -> Format.pp_print_string fmt "campaign-finished"

(* Narration + span/metric bookkeeping for one applied event.  Runs at
   the end of [apply], so a live run and [resume]'s replay emit the
   same log lines, the same span tree and the same counters. *)
let observe st e =
  let at = e.je_at in
  let obs = st.obs and metrics = st.metrics in
  if st.o_log then
    Hypertp.Log.info (fun m ->
        m "campaign%s: %a at %a"
          (match e.je_host with Some h -> " " ^ h | None -> "")
          pp_event e.je_event Sim.Time.pp at);
  let close i attrs =
    (match st.ospans.(i) with
    | Some s -> List.iter (fun (k, v) -> Obs.Span.set_attr s k v) attrs
    | None -> ());
    Hypertp.Otrace.finish obs st.ospans.(i) ~at;
    st.ospans.(i) <- None
  in
  (* The span/metric bookkeeping below allocates its label lists before
     the (no-op) Otrace calls see the [None]s, so skip the whole block
     when nothing is attached — the common case for large fleets. *)
  if obs = None && metrics = None then ()
  else begin
  (match (e.je_event, e.je_host) with
  | Admitted step, Some h ->
    let i = idx st h in
    st.ospans.(i) <-
      Hypertp.Otrace.start obs ~at ?parent:st.root_span
        ~track:("host:" ^ h)
        ~attrs:
          [ ("host", h); ("step", step_to_string step);
            ("attempt", string_of_int st.attempts.(i)) ]
        ("attempt:" ^ step_to_string step);
    Hypertp.Otrace.count metrics
      ~labels:[ ("engine", "campaign"); ("step", step_to_string step) ]
      "hypertp_campaign_attempts_total"
  | Flap_failure, Some h ->
    Hypertp.Otrace.event st.ospans.(idx st h) ~at "flap_leg"
  | Straggler_cancelled, Some h ->
    close (idx st h) [ ("result", "straggler_cancelled") ];
    Hypertp.Otrace.count metrics
      ~labels:[ ("engine", "campaign"); ("manifestation", "timeout") ]
      "hypertp_campaign_failures_total"
  | Attempt_failed { step; manifestation }, Some h ->
    close (idx st h)
      [ ("result", "failed"); ("step", step_to_string step);
        ("manifestation", man_to_string manifestation) ];
    Hypertp.Otrace.count metrics
      ~labels:
        [ ("engine", "campaign");
          ("manifestation", man_to_string manifestation) ]
      "hypertp_campaign_failures_total"
  | Attempt_completed step, Some h ->
    close (idx st h)
      (("result", "completed")
      ::
      (match e.je_audit with
      | Some v -> [ ("audit", verdict_to_string v) ]
      | None -> []));
    Hypertp.Otrace.count metrics
      ~labels:[ ("engine", "campaign"); ("step", step_to_string step) ]
      "hypertp_campaign_completions_total";
    (match e.je_audit with
    | Some v ->
      Hypertp.Otrace.count metrics
        ~labels:
          [ ("engine", "campaign"); ("verdict", verdict_to_string v) ]
        "hypertp_campaign_audits_total"
    | None -> ())
  | Deferred, Some h ->
    Hypertp.Otrace.instant obs ~at ~track:("host:" ^ h)
      ~attrs:[ ("host", h) ] "deferred"
  | Breaker_opened, None ->
    Hypertp.Otrace.instant obs ~at ?parent:st.root_span ~track:"controller"
      "breaker:opened";
    Hypertp.Otrace.count metrics
      ~labels:[ ("engine", "campaign") ]
      "hypertp_breaker_trips_total"
  | Breaker_half_opened, None ->
    Hypertp.Otrace.instant obs ~at ?parent:st.root_span ~track:"controller"
      "breaker:half_open"
  | Breaker_closed, None ->
    Hypertp.Otrace.instant obs ~at ?parent:st.root_span ~track:"controller"
      "breaker:closed"
  | Campaign_finished, None ->
    Hypertp.Otrace.finish obs st.root_span ~at;
    st.root_span <- None
  | _ -> ());
  Hypertp.Otrace.gauge_set metrics
    ~labels:[ ("engine", "campaign") ]
    "hypertp_campaign_running"
    (float_of_int st.running)
  end

(* Apply one journal entry to the state.  Both the live controller and
   [resume]'s replay funnel every mutation through here, which is what
   makes a resumed campaign land in exactly the state the crashed one
   had. *)
(* Host timelines are no longer tracked live — [make_report] rebuilds
   them from the packed journal, so the steady-state controller keeps no
   per-event boxed state at all. *)
let apply_state st e =
  match (e.je_event, e.je_host) with
  | Admitted step, Some h ->
    let i = idx st h in
    (match (step, st.hstates.(i)) with
    | Inplace, H_pending
    | (Shadow | Drain), H_failed_needs_drain
    | Retry, H_awaiting_retry ->
      ()
    | _ ->
      Hypertp_error.raise_error ~site:"Campaign"
        "admission out of ladder order");
    if step = Inplace && e.je_decision = None then
      Hypertp_error.raise_error ~site:"Campaign"
        "in-place admission without a fault decision";
    if step = Shadow then begin
      if st.shadow_tried.(i) then
        Hypertp_error.raise_error ~site:"Campaign"
          "second shadow admission for the same host";
      if st.spares_free <= 0 then
        Hypertp_error.raise_error ~site:"Campaign"
          "shadow admission without a free spare lane";
      st.shadow_tried.(i) <- true;
      st.spares_free <- st.spares_free - 1
    end;
    st.hstates.(i) <-
      H_running
        {
          r_step = step;
          r_started = e.je_at;
          r_decision = e.je_decision;
          r_shadow = e.je_shadow;
          r_flapped = false;
        };
    st.running <- st.running + 1;
    st.attempts.(i) <- st.attempts.(i) + 1
  | Flap_failure, Some h -> (
    match st.hstates.(idx st h) with
    | H_running r -> r.r_flapped <- true
    | _ ->
      Hypertp_error.raise_error ~site:"Campaign"
        "flap leg for a host not running")
  | Straggler_cancelled, Some h -> resolve_failure st (idx st h) Timeout e.je_at
  | Attempt_failed { manifestation; _ }, Some h ->
    resolve_failure st (idx st h) manifestation e.je_at
  | Attempt_completed step, Some h ->
    let i = idx st h in
    st.running <- st.running - 1;
    (match e.je_audit with
    | Some v -> st.audits.(i) <- Some v
    | None -> ());
    (match step with
    | Inplace -> st.hstates.(i) <- H_done (Upgraded_inplace, e.je_at)
    | Shadow ->
      (* The freed source becomes the next staged spare (pipeline
         lane), so the lane returns on success too. *)
      st.spares_free <- st.spares_free + 1;
      st.hstates.(i) <- H_done (Shadow_cutover, e.je_at)
    | Drain -> st.hstates.(i) <- H_done (Drained, e.je_at)
    | Retry -> st.hstates.(i) <- H_done (Deferred_resolved, e.je_at));
    st.n_done <- st.n_done + 1;
    st.exposure_acc <- st.exposure_acc +. hours e.je_at;
    if step <> Retry then push_window st true
  | Deferred, Some h ->
    let i = idx st h in
    (match st.hstates.(i) with
    | H_failed_needs_defer -> st.hstates.(i) <- H_awaiting_retry
    | _ ->
      Hypertp_error.raise_error ~site:"Campaign" "defer out of ladder order")
  | Breaker_opened, None ->
    st.trips <- st.trips + 1;
    st.breaker <- B_open_until (Sim.Time.add e.je_at st.cfg.breaker_cooldown);
    st.window_bits <- 0;
    st.window_len <- 0;
    st.half_failed <- false
  | Breaker_half_opened, None ->
    st.breaker <- B_half_open;
    st.half_successes <- 0;
    st.half_failed <- false;
    st.limit <- Stdlib.max 1 (st.setup.su_effective / 2)
  | Breaker_closed, None ->
    st.breaker <- B_closed;
    st.limit <- st.setup.su_effective
  | Campaign_finished, None -> st.finished_at <- Some e.je_at
  | _ -> Hypertp_error.raise_error ~site:"Campaign" "malformed journal entry"

let apply st e =
  apply_state st e;
  observe st e

(* --- live execution --- *)

exception Controller_died

type ctx = {
  st : st;
  eng : Sim.Engine.t;
  timers : Sim.Engine.timer list ref array;
}

let cursor st =
  match st.fault with None -> 0 | Some f -> Fault.trace_length f

let fire_opt st ?vm site =
  match st.fault with None -> false | Some f -> Fault.fire f ?vm site

(* The audit sites are only consulted when the plan arms them: firing
   them unconditionally would shift the fault cursor of every journal
   recorded before the audit existed. *)
let audit_armed st =
  match st.fault with
  | None -> false
  | Some f ->
    List.exists
      (fun (inj : Fault.injection) ->
        match inj.Fault.site with
        | Fault.Residual_leak | Fault.Scrub_fail -> true
        | _ -> false)
      (Fault.injections f)

(* Same armed-only discipline for the shadow sites: journals recorded
   before the shadow ladder existed (or under shadow-free plans) keep
   their fault cursors bit-for-bit. *)
let shadow_armed st =
  match st.fault with
  | None -> false
  | Some f ->
    List.exists
      (fun (inj : Fault.injection) ->
        List.mem inj.Fault.site Fault.shadow_sites)
      (Fault.injections f)

(* Journal-then-crash: the entry is applied and persisted first, and
   only then may the controller die, so a resumed run never loses the
   event that was being recorded. *)
(* Re-encode and push an already-validated entry (live append and
   resume's replay both end here). *)
let push_entry st e ~cursor =
  let host_idx = match e.je_host with None -> -1 | Some h -> idx st h in
  let w0, w1, _ = pack_entry ~host_idx { e with je_cursor = cursor } in
  Sim.Vec.push st.entries w0;
  Sim.Vec.push st.entries w1;
  Sim.Vec.push st.entries cursor

let append st ?host ?decision ?audit ?shadow ~at event =
  let e =
    { je_at = at; je_host = host; je_event = event; je_decision = decision;
      je_audit = audit; je_shadow = shadow; je_cursor = 0 }
  in
  apply st e;
  let crashed = fire_opt st Fault.Controller_crash in
  push_entry st e ~cursor:(cursor st);
  if st.obs <> None then
    Hypertp.Otrace.instant st.obs ~at ~track:"journal"
      ~attrs:[ ("cursor", string_of_int (cursor st)) ]
      "journal:checkpoint";
  if crashed then raise Controller_died

let clear_timers ctx i =
  List.iter Sim.Engine.cancel !(ctx.timers.(i));
  ctx.timers.(i) := []

(* Arm a guarded timer: it is a no-op unless host [i] is still on the
   same attempt it was armed for. *)
let arm ctx i at f =
  let epoch = ctx.st.attempts.(i) in
  let tm =
    Sim.Engine.schedule_timer_at ctx.eng at (fun () ->
        match ctx.st.hstates.(i) with
        | H_running _ when ctx.st.attempts.(i) = epoch -> f ()
        | _ -> ())
  in
  ctx.timers.(i) := tm :: !(ctx.timers.(i))

let rec settle ctx =
  let st = ctx.st in
  let at = Sim.Engine.now ctx.eng in
  (* 1. Ladder escalations: a failed in-place attempt drains next.
     Escalation keeps the host's admission slot and ignores the breaker
     — remediation of an in-flight host must not be paused.  The
     work-list is drained sorted so the event order matches the array
     scan this replaces; the state guard skips entries already handled
     (e.g. re-pushed by a replay). *)
  let drainable = List.sort compare st.needs_drain in
  st.needs_drain <- [];
  List.iter
    (fun i ->
      if st.hstates.(i) = H_failed_needs_drain then
        (* Shadow rung of the ladder: with a staged spare lane free and
           no earlier shadow failure on this host, evacuate by cutover
           before falling back to the disruptive drain. *)
        if
          st.cfg.shadow_spares > 0 && st.spares_free > 0
          && not st.shadow_tried.(i)
        then admit ctx i Shadow
        else admit ctx i Drain)
    drainable;
  (* 2. Ladder exhausted: park the host, retried at campaign end. *)
  let deferrable = List.sort compare st.needs_defer in
  st.needs_defer <- [];
  List.iter
    (fun i ->
      if st.hstates.(i) = H_failed_needs_defer then
        append st ~host:st.setup.su_tasks.(i).t_node ~at Deferred)
    deferrable;
  (* 3. Breaker transitions. *)
  (match st.breaker with
  | B_closed | B_half_open ->
    let fails = window_fails st in
    let rate = float_of_int fails /. float_of_int st.cfg.breaker_window in
    if
      (st.breaker = B_half_open && st.half_failed)
      || (fails > 0 && rate >= st.cfg.breaker_threshold)
    then begin
      append st ~at Breaker_opened;
      match st.breaker with
      | B_open_until u ->
        Sim.Engine.schedule_at ctx.eng u (fun () -> reopen ctx)
      | B_closed | B_half_open -> ()
    end
    else if st.breaker = B_half_open
            && st.half_successes >= st.cfg.breaker_window
    then append st ~at Breaker_closed
  | B_open_until _ -> ());
  (* 4. Admission: fill free slots with pending hosts, lowest index
     first, unless the breaker is open.  [next_pending] lazily skips
     past hosts that left [H_pending]; it never needs to back up, so
     admission over the whole campaign costs O(hosts). *)
  let n = Array.length st.hstates in
  let skip_admitted () =
    while
      st.next_pending < n && st.hstates.(st.next_pending) <> H_pending
    do
      st.next_pending <- st.next_pending + 1
    done
  in
  (match st.breaker with
  | B_open_until _ -> ()
  | B_closed | B_half_open ->
    skip_admitted ();
    while st.next_pending < n && st.running < st.limit do
      admit ctx st.next_pending Inplace;
      skip_admitted ()
    done);
  (* 5. End of the main phase: retry deferred hosts one at a time, then
     declare the campaign finished.  [retry_cursor] is monotone: it
     only moves while the retry phase is active, when every host behind
     it is terminal. *)
  skip_admitted ();
  if st.running = 0 && st.next_pending >= n then begin
    (* Phases 1-2 emptied the failed states, so every host here is
       either H_awaiting_retry or terminal — the cursor never skips a
       host that could become awaiting later. *)
    while
      st.retry_cursor < n && st.hstates.(st.retry_cursor) <> H_awaiting_retry
    do
      st.retry_cursor <- st.retry_cursor + 1
    done;
    if st.retry_cursor < n then admit ctx st.retry_cursor Retry
    else if st.finished_at = None && st.n_done = n then
      append st ~at Campaign_finished
  end

and reopen ctx =
  let st = ctx.st in
  (match st.breaker with
  | B_open_until _ ->
    append st ~at:(Sim.Engine.now ctx.eng) Breaker_half_opened
  | B_closed | B_half_open -> ());
  settle ctx

and admit ctx i step =
  let st = ctx.st in
  let at = Sim.Engine.now ctx.eng in
  let t = st.setup.su_tasks.(i) in
  let decision =
    match step with
    | Inplace ->
      (* Always consult all three sites, in a fixed order, so the
         probability stream stays aligned across fault plans (the
         sweep_faulty nesting property). *)
      let d_flap = fire_opt st ~vm:t.t_node Fault.Host_flap in
      let d_crash = fire_opt st ~vm:t.t_node Fault.Host_crash in
      let d_timeout = fire_opt st ~vm:t.t_node Fault.Host_timeout in
      Some { d_flap; d_crash; d_timeout }
    | Shadow | Drain | Retry -> None
  in
  let shadow =
    match step with
    | Shadow when shadow_armed st ->
      (* All five shadow sites, in a fixed order, for the same
         stream-alignment reason as the in-place decision. *)
      let s_spare = fire_opt st ~vm:t.t_node Fault.Spare_exhausted in
      let s_stage = fire_opt st ~vm:t.t_node Fault.Shadow_stage_fail in
      let s_drop = fire_opt st ~vm:t.t_node Fault.Shadow_stream_drop in
      let s_diverge = fire_opt st ~vm:t.t_node Fault.Shadow_diverge in
      let s_partition = fire_opt st ~vm:t.t_node Fault.Swap_partition in
      Some { s_spare; s_stage; s_drop; s_diverge; s_partition }
    | _ -> None
  in
  append st ~host:t.t_node ?decision ?shadow ~at (Admitted step);
  schedule_attempt ctx i

(* Schedule the engine events for a host currently in [H_running].  All
   times are absolute (relative to the attempt's recorded start), so the
   same function reconstructs in-flight attempts on resume. *)
and schedule_attempt ctx i =
  let st = ctx.st in
  let t = st.setup.su_tasks.(i) in
  match st.hstates.(i) with
  | H_running r -> (
    let from_start span = Sim.Time.add r.r_started span in
    match r.r_step with
    | Inplace ->
      let d =
        match r.r_decision with
        | Some d -> d
        | None ->
          Hypertp_error.raise_error ~site:"Campaign"
            "in-place attempt without decision"
      in
      (* The supervisor's deadline races the attempt; whichever loses is
         cancelled. *)
      arm ctx i (from_start t.t_deadline) (fun () -> on_deadline ctx i);
      if d.d_timeout then
        (* Hung host: nothing else ever fires; the deadline wins. *)
        ()
      else if d.d_flap then begin
        if not r.r_flapped then
          arm ctx i
            (from_start (Sim.Time.scale flap_leg1_frac t.t_expected))
            (fun () -> on_flap_leg ctx i)
        else
          arm ctx i
            (from_start (Sim.Time.scale flap_final_frac t.t_expected))
            (fun () -> on_fail ctx i Flap)
      end
      else if d.d_crash then
        arm ctx i
          (from_start (Sim.Time.scale crash_frac t.t_expected))
          (fun () -> on_fail ctx i Crash)
      else
        arm ctx i
          (from_start
             (Sim.Time.scale (host_jitter st.cfg t.t_node) t.t_expected))
          (fun () -> on_complete ctx i Inplace)
    | Shadow ->
      (* The pre-swap abort points are all analytic: a fired shadow
         site surfaces as one failed attempt (the engine's abort +
         source-intact verification), costed like a drain that died
         mid-stream.  Which site fired was journaled at admission. *)
      if (match r.r_shadow with Some s -> shadow_failed s | None -> false)
      then
        arm ctx i
          (from_start (Sim.Time.scale shadow_fail_frac t.t_shadow))
          (fun () -> on_fail ctx i Crash)
      else
        arm ctx i
          (from_start
             (Sim.Time.scale (host_jitter st.cfg t.t_node) t.t_shadow))
          (fun () -> on_complete ctx i Shadow)
    | Drain ->
      if coin st.cfg "drain" t.t_node st.cfg.drain_flakiness then
        arm ctx i
          (from_start (Sim.Time.scale drain_fail_frac t.t_drain))
          (fun () -> on_fail ctx i Crash)
      else arm ctx i (from_start t.t_drain) (fun () -> on_complete ctx i Drain)
    | Retry ->
      if coin st.cfg "retry" t.t_node st.cfg.retry_flakiness then
        arm ctx i
          (from_start (Sim.Time.scale retry_fail_frac t.t_up))
          (fun () -> on_fail ctx i Crash)
      else
        arm ctx i
          (from_start (Sim.Time.scale (host_jitter st.cfg t.t_node) t.t_up))
          (fun () -> on_complete ctx i Retry))
  | _ ->
    Hypertp_error.raise_error ~site:"Campaign"
      "scheduling for a host not running"

and on_deadline ctx i =
  clear_timers ctx i;
  append ctx.st
    ~host:ctx.st.setup.su_tasks.(i).t_node
    ~at:(Sim.Engine.now ctx.eng) Straggler_cancelled;
  settle ctx

and on_fail ctx i manifestation =
  let st = ctx.st in
  let step =
    match st.hstates.(i) with H_running r -> r.r_step | _ -> assert false
  in
  clear_timers ctx i;
  append st
    ~host:st.setup.su_tasks.(i).t_node
    ~at:(Sim.Engine.now ctx.eng)
    (Attempt_failed { step; manifestation });
  settle ctx

and on_complete ctx i step =
  let st = ctx.st in
  clear_timers ctx i;
  let node = st.setup.su_tasks.(i).t_node in
  (* Post-commit audit verdict for steps that end on the new hypervisor
     via InPlaceTP.  Only consulted when the plan arms the audit sites,
     so journals recorded under audit-free plans keep their fault
     cursors bit-for-bit (and the probability stream stays aligned for
     everyone else).  Both sites are consulted in a fixed order even
     when the first misses, for the same stream-alignment reason. *)
  let audit =
    match step with
    | (Inplace | Retry) when audit_armed st ->
      let leak = fire_opt st ~vm:node Fault.Residual_leak in
      let scrub_failed = fire_opt st ~vm:node Fault.Scrub_fail in
      Some
        (if not leak then A_clean
         else if scrub_failed then A_failed
         else A_scrubbed)
    | _ -> None
  in
  append st ~host:node ?audit ~at:(Sim.Engine.now ctx.eng)
    (Attempt_completed step);
  settle ctx

and on_flap_leg ctx i =
  (* First leg: the host fails, then recovers.  Not an attempt outcome —
     it must not count toward the breaker — so only the leg itself is
     journaled and the final failure is re-armed. *)
  append ctx.st
    ~host:ctx.st.setup.su_tasks.(i).t_node
    ~at:(Sim.Engine.now ctx.eng) Flap_failure;
  schedule_attempt ctx i

(* --- results --- *)

let make_journal st =
  { j_config = st.cfg; j_words = st.entries; j_names = st.setup.su_names }

let make_report st =
  let finished =
    match st.finished_at with
    | Some t -> t
    | None ->
      Hypertp_error.raise_error ~site:"Campaign"
        "report requested before the finish event"
  in
  let wall = Sim.Time.add finished st.setup.su_rebalance in
  (* Rebuild per-host timelines from the packed journal (newest first,
     reversed below) — the controller stopped tracking them live. *)
  let n = Array.length st.setup.su_tasks in
  let timelines = Array.make n [] in
  let words = st.entries in
  for k = 0 to (Sim.Vec.length words / 3) - 1 do
    let w1 = Sim.Vec.get words ((3 * k) + 1) in
    match w1 lsr 20 with
    | 0 -> ()
    | i ->
      let e = unpack_entry st.setup.su_names (Sim.Vec.get words (3 * k)) w1 0 in
      timelines.(i - 1) <- (e.je_at, e.je_event) :: timelines.(i - 1)
  done;
  let hosts =
    Array.to_list
      (Array.mapi
         (fun i t ->
           let status, done_at =
             match st.hstates.(i) with
             | H_done (Deferred_exposed, _) -> (Deferred_exposed, wall)
             | H_done (s, at) -> (s, at)
             | _ ->
               Hypertp_error.raise_error ~site:"Campaign"
                 "unfinished host in report"
           in
           {
             hr_node = t.t_node;
             hr_vms_in_place = t.t_vms_in_place;
             hr_drain_migrations = t.t_drain_migs;
             hr_status = status;
             hr_attempts = st.attempts.(i);
             hr_manifestations = List.rev st.manifests.(i);
             hr_timeline = List.rev timelines.(i);
             hr_expected = t.t_expected;
             hr_done_at = done_at;
             hr_exposure_hours = hours done_at;
             hr_audit = st.audits.(i);
           })
         st.setup.su_tasks)
  in
  let deferred_hosts =
    List.filter
      (fun h ->
        match h.hr_status with
        | Deferred_resolved | Deferred_exposed -> true
        | Upgraded_inplace | Shadow_cutover | Drained -> false)
      hosts
  in
  let sum_vms pred =
    List.fold_left
      (fun acc h -> if pred h.hr_status then acc + h.hr_vms_in_place else acc)
      0 hosts
  in
  let vms_total = st.cfg.nodes * st.cfg.vms_per_node in
  let vms_in_place_total =
    List.fold_left (fun acc h -> acc + h.hr_vms_in_place) 0 hosts
  in
  let r =
    {
    cfg = st.cfg;
    base = st.setup.su_base;
    effective_concurrency = st.setup.su_effective;
    hosts;
    wall_clock = wall;
    rebalance_time = st.setup.su_rebalance;
    (* Accumulated incrementally as hosts finished; deferred-exposed
       hosts stay exposed until the campaign's wall clock.  The test
       suite pins this equal to the per-host fold over [hosts]. *)
    exposed_host_hours =
      st.exposure_acc +. (float_of_int st.n_deferred_exposed *. hours wall);
    baseline_exposed_host_hours = float_of_int st.cfg.nodes *. hours wall;
    deferred = List.map (fun h -> h.hr_node) deferred_hosts;
    deferred_exposure_hours =
      List.fold_left (fun acc h -> acc +. h.hr_exposure_hours) 0.0
        deferred_hosts;
    breaker_trips = st.trips;
    vms_total;
    vms_inplace_ok =
      sum_vms (function
        | Upgraded_inplace | Deferred_resolved -> true
        | Shadow_cutover | Drained | Deferred_exposed -> false);
    vms_shadow = sum_vms (function Shadow_cutover -> true | _ -> false);
    vms_drained = sum_vms (function Drained -> true | _ -> false);
    vms_on_deferred =
      sum_vms (function Deferred_exposed -> true | _ -> false);
    vms_migrated_planned = vms_total - vms_in_place_total;
    audit_verdicts =
      List.filter_map
        (fun h ->
          match h.hr_audit with Some v -> Some (h.hr_node, v) | None -> None)
        hosts;
    }
  in
  let labels = [ ("engine", "campaign") ] in
  Hypertp.Otrace.gauge_set st.metrics ~labels
    "hypertp_campaign_exposed_host_hours" r.exposed_host_hours;
  Hypertp.Otrace.gauge_set st.metrics ~labels
    "hypertp_campaign_wall_clock_seconds"
    (Sim.Time.to_sec_f r.wall_clock);
  r

type run_result = Finished of report * journal | Crashed of journal

let make_ctx st =
  let eng = Sim.Engine.create () in
  (* Timer lifecycle on its own track: every straggler deadline and
     attempt completion timer shows up as fired or cancelled. *)
  (match st.obs with
  | Some tr ->
    Sim.Engine.set_timer_hook eng (fun at notice ->
        Obs.Tracer.instant tr ~at ~track:"engine"
          (match notice with
          | `Fired -> "timer:fired"
          | `Cancelled -> "timer:cancelled"))
  | None -> ());
  {
    st;
    eng;
    timers = Array.init (Array.length st.setup.su_tasks) (fun _ -> ref []);
  }

let drive ctx =
  try
    Sim.Engine.run ctx.eng;
    Finished (make_report ctx.st, make_journal ctx.st)
  with Controller_died -> Crashed (make_journal ctx.st)

(* Fresh controller, first settle scheduled, nothing driven yet. *)
let start_st ?fault ?obs ?metrics cfg =
  validate_config cfg;
  let setup = build_setup cfg in
  let ctx = make_ctx (make_st ?fault ?obs ?metrics cfg setup) in
  Sim.Engine.schedule_at ctx.eng Sim.Time.zero (fun () -> settle ctx);
  ctx

let run ?ctx:run_ctx ?fault ?obs ?metrics cfg =
  let c = Hypertp.Ctx.resolve ?ctx:run_ctx ?fault ?obs ?metrics () in
  drive
    (start_st ?fault:c.Hypertp.Ctx.fault ?obs:c.Hypertp.Ctx.obs
       ?metrics:c.Hypertp.Ctx.metrics cfg)

(* Replayed controller: journal re-applied and validated, in-flight
   attempts re-armed, nothing driven yet.  [fault] is the crashed run's
   plan, restarted here. *)
let resume_st ?fault ?obs ?metrics journal =
  let cfg = journal.j_config in
  validate_config cfg;
  let fault = Option.map Fault.restart fault in
  let setup = build_setup cfg in
  let st = make_st ?fault ?obs ?metrics cfg setup in
  (* Replay: every entry is re-applied and re-validated against the
     restarted fault plan — the same sites fire in the same order, so
     the plan's counters, probability stream and trace end up exactly
     where the crashed run left them.  Validation failures name the
     exact entry and which recorded cursor diverged, so a journal file
     resumed under the wrong --fault specs (or seed) is diagnosable. *)
  let plan_seed () =
    match st.fault with Some f -> Fault.seed f | None -> 0L
  in
  let entry_no = ref 0 in
  journal_iter
    (fun e ->
      incr entry_no;
      (match (e.je_event, e.je_host, e.je_decision) with
      | Admitted Inplace, Some h, Some d ->
        let f_flap = fire_opt st ~vm:h Fault.Host_flap in
        let f_crash = fire_opt st ~vm:h Fault.Host_crash in
        let f_timeout = fire_opt st ~vm:h Fault.Host_timeout in
        if
          st.fault <> None
          && (f_flap <> d.d_flap || f_crash <> d.d_crash
            || f_timeout <> d.d_timeout)
        then
          let diverged =
            String.concat ", "
              (List.filter_map
                 (fun (name, journalled, replayed) ->
                   if journalled <> replayed then
                     Some
                       (Printf.sprintf "%s (journal %b, plan %b)" name
                          journalled replayed)
                   else None)
                 [ ("flap", d.d_flap, f_flap); ("crash", d.d_crash, f_crash);
                   ("timeout", d.d_timeout, f_timeout) ])
          in
          Hypertp_error.raise_errorf ~site:"Campaign.resume"
            ~hint:
              (Printf.sprintf
                 "the journal was recorded under a different fault plan: \
                  pass the exact --fault specs (and seed) of the crashed \
                  run; the restarted plan (seed %Ld) decides differently \
                  here" (plan_seed ()))
            "journal entry %d (host %s admission at %s) disagrees with the \
             fault plan on the %s decision"
            !entry_no h (Sim.Time.to_string e.je_at) diverged
      | Admitted Inplace, _, None ->
        Hypertp_error.raise_errorf ~site:"Campaign.resume"
          "journal entry %d: in-place admission without decision" !entry_no
      | _ -> ());
      (* Shadow admissions are re-fired and validated like the in-place
         decisions: the entry carries [je_shadow] iff the recording run
         consulted the shadow sites at this admission. *)
      (match (e.je_event, e.je_host, e.je_shadow) with
      | Admitted Shadow, Some h, Some s ->
        let f_spare = fire_opt st ~vm:h Fault.Spare_exhausted in
        let f_stage = fire_opt st ~vm:h Fault.Shadow_stage_fail in
        let f_drop = fire_opt st ~vm:h Fault.Shadow_stream_drop in
        let f_diverge = fire_opt st ~vm:h Fault.Shadow_diverge in
        let f_partition = fire_opt st ~vm:h Fault.Swap_partition in
        let replayed =
          { s_spare = f_spare; s_stage = f_stage; s_drop = f_drop;
            s_diverge = f_diverge; s_partition = f_partition }
        in
        if st.fault <> None && replayed <> s then
          let diverged =
            String.concat ", "
              (List.filter_map
                 (fun (name, journalled, rep) ->
                   if journalled <> rep then
                     Some
                       (Printf.sprintf "%s (journal %b, plan %b)" name
                          journalled rep)
                   else None)
                 [ ("spare", s.s_spare, f_spare);
                   ("stage", s.s_stage, f_stage);
                   ("drop", s.s_drop, f_drop);
                   ("diverge", s.s_diverge, f_diverge);
                   ("partition", s.s_partition, f_partition) ])
          in
          Hypertp_error.raise_errorf ~site:"Campaign.resume"
            ~hint:
              (Printf.sprintf
                 "the journal was recorded under a different fault plan: \
                  pass the exact --fault specs (and seed) of the crashed \
                  run; the restarted plan (seed %Ld) decides differently \
                  here" (plan_seed ()))
            "journal entry %d (host %s shadow admission at %s) disagrees \
             with the fault plan on the %s decision"
            !entry_no h (Sim.Time.to_string e.je_at) diverged
      | _ -> ());
      (* Audit verdicts are re-fired and validated the same way as the
         admission decisions: the entry carries [je_audit] iff the
         recording run consulted the audit sites at this completion. *)
      (match (e.je_event, e.je_host, e.je_audit) with
      | Attempt_completed (Inplace | Retry), Some h, Some v ->
        let leak = fire_opt st ~vm:h Fault.Residual_leak in
        let scrub_failed = fire_opt st ~vm:h Fault.Scrub_fail in
        let replayed =
          if not leak then A_clean
          else if scrub_failed then A_failed
          else A_scrubbed
        in
        if st.fault <> None && replayed <> v then
          Hypertp_error.raise_errorf ~site:"Campaign.resume"
            ~hint:
              (Printf.sprintf
                 "the journal was recorded under a different fault plan: \
                  pass the exact --fault specs (and seed) of the crashed \
                  run; the restarted plan (seed %Ld) decides differently \
                  here" (plan_seed ()))
            "journal entry %d (host %s completion at %s) disagrees with \
             the fault plan on the audit verdict (journal %s, plan %s)"
            !entry_no h (Sim.Time.to_string e.je_at) (verdict_to_string v)
            (verdict_to_string replayed)
      | _ -> ());
      apply st e;
      ignore (fire_opt st Fault.Controller_crash);
      if st.fault <> None && cursor st <> e.je_cursor then
        Hypertp_error.raise_errorf ~site:"Campaign.resume"
          ~hint:
            (Printf.sprintf
               "every earlier entry matched, so the --fault specs differ \
                from the crashed run's (or its seed was not %Ld): a \
                different injection list consumes a different number of \
                fire decisions per event" (plan_seed ()))
          "journal entry %d (%s at %s): fault-plan cursor diverged — the \
           journal records %d fire decisions taken by this point, the \
           replayed plan took %d"
          !entry_no
          (match e.je_host with Some h -> "host " ^ h | None -> "campaign")
          (Sim.Time.to_string e.je_at) e.je_cursor (cursor st);
      push_entry st e ~cursor:e.je_cursor)
    journal;
  let ctx = make_ctx st in
  let t_last =
    match journal_last journal with None -> Sim.Time.zero | Some e -> e.je_at
  in
  (* The crashed run died mid-settle at [t_last]; continue it first,
     then let the in-flight attempts race again from their recorded
     start times. *)
  Sim.Engine.schedule_at ctx.eng t_last (fun () -> settle ctx);
  Array.iteri
    (fun i h ->
      match h with H_running _ -> schedule_attempt ctx i | _ -> ())
    st.hstates;
  (match st.breaker with
  | B_open_until u -> Sim.Engine.schedule_at ctx.eng u (fun () -> reopen ctx)
  | B_closed | B_half_open -> ());
  ctx

let resume ?ctx:run_ctx ?fault ?obs ?metrics journal =
  let c = Hypertp.Ctx.resolve ?ctx:run_ctx ?fault ?obs ?metrics () in
  drive
    (resume_st ?fault:c.Hypertp.Ctx.fault ?obs:c.Hypertp.Ctx.obs
       ?metrics:c.Hypertp.Ctx.metrics journal)

let run_to_completion ?ctx ?fault ?obs ?metrics cfg =
  let c = Hypertp.Ctx.resolve ?ctx ?fault ?obs ?metrics () in
  let fault = c.Hypertp.Ctx.fault
  and obs = c.Hypertp.Ctx.obs
  and metrics = c.Hypertp.Ctx.metrics in
  let rec go = function
    | Finished (report, _) -> report
    | Crashed j -> go (resume ?fault ?obs ?metrics j)
  in
  go (run ?fault ?obs ?metrics cfg)

let sweep ?(config = default_config) ?(seed = 0xC1A5L) ~probabilities () =
  List.map
    (fun p ->
      let fault =
        Fault.make ~seed
          [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability p } ]
      in
      (p, run_to_completion ~fault config))
    probabilities

(* --- journal serialisation --- *)

let step_of_string = function
  | "inplace" -> Some Inplace
  | "shadow" -> Some Shadow
  | "drain" -> Some Drain
  | "retry" -> Some Retry
  | _ -> None

let man_of_string = function
  | "crash" -> Some Crash
  | "timeout" -> Some Timeout
  | "flap" -> Some Flap
  | _ -> None

let journal_magic = "hypertp-campaign-journal v1"

let journal_to_string j =
  let buf = Buffer.create 4096 in
  let c = j.j_config in
  Buffer.add_string buf (journal_magic ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf
       "config nodes=%d vms_per_node=%d vm_ram=%d node_ram=%d fraction=%.17g \
        concurrency=%d straggler=%.17g window=%d threshold=%.17g \
        cooldown_ns=%d jitter=%.17g drain=%.17g retry=%.17g seed=%Ld%s\n"
       c.nodes c.vms_per_node c.vm_ram c.node_ram c.inplace_fraction
       c.concurrency c.straggler_factor c.breaker_window c.breaker_threshold
       (Sim.Time.to_ns c.breaker_cooldown)
       c.jitter_pct c.drain_flakiness c.retry_flakiness c.seed
       (* Optional token: absent for shadow-free campaigns, so journals
          recorded before the shadow rung existed serialise
          byte-identically. *)
       (if c.shadow_spares > 0 then
          Printf.sprintf " shadow_spares=%d" c.shadow_spares
        else ""));
  journal_iter
    (fun e ->
      let host = match e.je_host with Some h -> h | None -> "-" in
      let kind =
        match e.je_event with
        | Admitted step -> Printf.sprintf "adm step=%s" (step_to_string step)
        | Flap_failure -> "flapleg"
        | Straggler_cancelled -> "strag"
        | Attempt_failed { step; manifestation } ->
          Printf.sprintf "fail step=%s man=%s" (step_to_string step)
            (man_to_string manifestation)
        | Attempt_completed step ->
          Printf.sprintf "done step=%s" (step_to_string step)
        | Deferred -> "defer"
        | Breaker_opened -> "bopen"
        | Breaker_half_opened -> "bhalf"
        | Breaker_closed -> "bclosed"
        | Campaign_finished -> "fin"
      in
      let decision =
        match e.je_decision with
        | Some d ->
          Printf.sprintf " flap=%d crash=%d timeout=%d"
            (Bool.to_int d.d_flap) (Bool.to_int d.d_crash)
            (Bool.to_int d.d_timeout)
        | None -> ""
      in
      (* Optional token: absent on audit-free entries, so journals
         written before the audit existed serialise byte-identically. *)
      let audit =
        match e.je_audit with
        | Some v -> Printf.sprintf " audit=%s" (verdict_to_string v)
        | None -> ""
      in
      let shadow =
        match e.je_shadow with
        | Some s ->
          Printf.sprintf " sspare=%d sstage=%d sdrop=%d sdiverge=%d spart=%d"
            (Bool.to_int s.s_spare) (Bool.to_int s.s_stage)
            (Bool.to_int s.s_drop) (Bool.to_int s.s_diverge)
            (Bool.to_int s.s_partition)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "e at=%d host=%s %s%s%s%s cursor=%d\n"
           (Sim.Time.to_ns e.je_at) host kind decision audit shadow
           e.je_cursor))
    j;
  Buffer.contents buf

exception Parse of string

let journal_of_string s =
  let kv tok =
    match String.index_opt tok '=' with
    | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
    | None -> None
  in
  let fields line = List.filter_map kv (String.split_on_char ' ' line) in
  let get fs k =
    match List.assoc_opt k fs with
    | Some v -> v
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let int_f fs k =
    match int_of_string_opt (get fs k) with
    | Some v -> v
    | None -> raise (Parse (Printf.sprintf "bad integer for %S" k))
  in
  let float_f fs k =
    match float_of_string_opt (get fs k) with
    | Some v -> v
    | None -> raise (Parse (Printf.sprintf "bad float for %S" k))
  in
  try
    let lines =
      List.filter
        (fun l -> String.trim l <> "")
        (String.split_on_char '\n' s)
    in
    match lines with
    | magic :: config_line :: entry_lines ->
      if String.trim magic <> journal_magic then
        raise (Parse "not a campaign journal (bad magic line)");
      let fs = fields config_line in
      let config =
        {
          nodes = int_f fs "nodes";
          vms_per_node = int_f fs "vms_per_node";
          vm_ram = int_f fs "vm_ram";
          node_ram = int_f fs "node_ram";
          inplace_fraction = float_f fs "fraction";
          concurrency = int_f fs "concurrency";
          straggler_factor = float_f fs "straggler";
          breaker_window = int_f fs "window";
          breaker_threshold = float_f fs "threshold";
          breaker_cooldown = Sim.Time.ns (int_f fs "cooldown_ns");
          jitter_pct = float_f fs "jitter";
          drain_flakiness = float_f fs "drain";
          retry_flakiness = float_f fs "retry";
          seed =
            (match Int64.of_string_opt (get fs "seed") with
            | Some v -> v
            | None -> raise (Parse "bad seed"));
          shadow_spares =
            (match List.assoc_opt "shadow_spares" fs with
            | None -> 0
            | Some _ -> int_f fs "shadow_spares");
        }
      in
      let parse_step fs =
        match step_of_string (get fs "step") with
        | Some s -> s
        | None -> raise (Parse "bad ladder step")
      in
      (* Parsed entries are interned straight into the packed form;
         hosts get side-table indices in first-appearance order. *)
      let words = Sim.Vec.create ~capacity:(4 * List.length entry_lines) 0 in
      let names = ref [] in
      let name_idx = Hashtbl.create 64 in
      let n_names = ref 0 in
      let intern h =
        match Hashtbl.find_opt name_idx h with
        | Some i -> i
        | None ->
          let i = !n_names in
          Hashtbl.replace name_idx h i;
          names := h :: !names;
          incr n_names;
          i
      in
      List.iter
        (fun line ->
            let tokens = String.split_on_char ' ' line in
            (match tokens with
            | "e" :: _ -> ()
            | _ -> raise (Parse ("bad entry line: " ^ line)));
            let kind =
              match
                List.find_opt (fun t -> t <> "e" && kv t = None) tokens
              with
              | Some k -> k
              | None -> raise (Parse ("entry without a kind: " ^ line))
            in
            let fs = fields line in
            let event =
              match kind with
              | "adm" -> Admitted (parse_step fs)
              | "flapleg" -> Flap_failure
              | "strag" -> Straggler_cancelled
              | "fail" ->
                Attempt_failed
                  {
                    step = parse_step fs;
                    manifestation =
                      (match man_of_string (get fs "man") with
                      | Some m -> m
                      | None -> raise (Parse "bad manifestation"));
                  }
              | "done" -> Attempt_completed (parse_step fs)
              | "defer" -> Deferred
              | "bopen" -> Breaker_opened
              | "bhalf" -> Breaker_half_opened
              | "bclosed" -> Breaker_closed
              | "fin" -> Campaign_finished
              | k -> raise (Parse ("unknown entry kind " ^ k))
            in
            let decision =
              match List.assoc_opt "flap" fs with
              | None -> None
              | Some _ ->
                Some
                  {
                    d_flap = int_f fs "flap" <> 0;
                    d_crash = int_f fs "crash" <> 0;
                    d_timeout = int_f fs "timeout" <> 0;
                  }
            in
            let audit =
              match List.assoc_opt "audit" fs with
              | None -> None
              | Some v -> (
                match verdict_of_string v with
                | Some _ as r -> r
                | None -> raise (Parse ("bad audit verdict " ^ v)))
            in
            let shadow =
              match List.assoc_opt "sspare" fs with
              | None -> None
              | Some _ ->
                Some
                  {
                    s_spare = int_f fs "sspare" <> 0;
                    s_stage = int_f fs "sstage" <> 0;
                    s_drop = int_f fs "sdrop" <> 0;
                    s_diverge = int_f fs "sdiverge" <> 0;
                    s_partition = int_f fs "spart" <> 0;
                  }
            in
            let e =
              {
                je_at = Sim.Time.ns (int_f fs "at");
                je_host =
                  (match get fs "host" with "-" -> None | h -> Some h);
                je_event = event;
                je_decision = decision;
                je_audit = audit;
                je_shadow = shadow;
                je_cursor = int_f fs "cursor";
              }
            in
            let host_idx =
              match e.je_host with None -> -1 | Some h -> intern h
            in
            let w0, w1, w2 = pack_entry ~host_idx e in
            Sim.Vec.push words w0;
            Sim.Vec.push words w1;
            Sim.Vec.push words w2)
        entry_lines;
      Ok
        {
          j_config = config;
          j_words = words;
          j_names = Array.of_list (List.rev !names);
        }
    | _ -> raise (Parse "truncated journal (need magic + config lines)")
  with
  | Parse msg -> Error msg
  | Invalid_argument msg -> Error msg

(* --- pretty printing --- *)

let status_to_string = function
  | Upgraded_inplace -> "inplace"
  | Shadow_cutover -> "shadow-cutover"
  | Drained -> "drained"
  | Deferred_resolved -> "deferred+retried"
  | Deferred_exposed -> "deferred+EXPOSED"

let pp_host_record fmt h =
  Format.fprintf fmt "%s: %s after %d attempt%s at %a (%.3f h exposed)%s"
    h.hr_node (status_to_string h.hr_status) h.hr_attempts
    (if h.hr_attempts = 1 then "" else "s")
    Sim.Time.pp h.hr_done_at h.hr_exposure_hours
    (match h.hr_audit with
    | None -> ""
    | Some v -> ", audit " ^ verdict_to_string v)

let pp_report fmt r =
  let count s =
    List.length (List.filter (fun h -> h.hr_status = s) r.hosts)
  in
  Format.fprintf fmt
    "@[<v>campaign: %d hosts, concurrency %d (requested %d), wall-clock %a \
     (unsupervised %a, rebalance %a)@,\
     statuses: %d inplace / %d shadow / %d drained / %d retried / %d \
     exposed; breaker trips %d@,\
     exposure %.3f host-hours (baseline %.3f, deferred share %.3f)@,\
     VMs: %d total = %d inplace-ok + %d shadow + %d drained + %d on \
     deferred + %d migrated by plan%s@]"
    (List.length r.hosts) r.effective_concurrency r.cfg.concurrency
    Sim.Time.pp r.wall_clock Sim.Time.pp r.base.Upgrade.total Sim.Time.pp
    r.rebalance_time (count Upgraded_inplace) (count Shadow_cutover)
    (count Drained) (count Deferred_resolved) (count Deferred_exposed)
    r.breaker_trips r.exposed_host_hours r.baseline_exposed_host_hours
    r.deferred_exposure_hours r.vms_total r.vms_inplace_ok r.vms_shadow
    r.vms_drained r.vms_on_deferred r.vms_migrated_planned
    (match r.audit_verdicts with
    | [] -> ""
    | vs ->
      let n v = List.length (List.filter (fun (_, x) -> x = v) vs) in
      Format.asprintf "@,audits: %d clean / %d scrubbed / %d failed"
        (n A_clean) (n A_scrubbed) (n A_failed))

(* --- region-sharded fleets --- *)

type summary = {
  s_region : string;
  s_hosts : int;
  s_vms : int;
  s_wall_clock : Sim.Time.t;
  s_exposed_host_hours : float;
  s_baseline_exposed_host_hours : float;
  s_breaker_trips : int;
  s_inplace : int;
  s_shadow : int;
  s_drained : int;
  s_retried : int;
  s_exposed : int;
  s_attempts : int;
  s_events : int;
  s_resumes : int;
}

type fleet_report = {
  f_topology : Topology.t;
  f_mode : Hypertp.Ctx.sharding;
  f_shards : int;
  f_domains : int;
  f_summaries : summary array; (* region order *)
  f_journals : journal array;  (* region order *)
  f_wall_clock : Sim.Time.t;
  f_exposed_host_hours : float;
  f_baseline_exposed_host_hours : float;
  f_breaker_trips : int;
  f_resumes : int;
  f_minor_words : float;
}

(* Scalar-only digest of a finished controller: what [run_fleet] keeps
   per region instead of a [report], whose per-host records would put a
   million boxed timelines back on the heap. *)
let make_summary ~region ~resumes st =
  let finished =
    match st.finished_at with
    | Some t -> t
    | None ->
      Hypertp_error.raise_error ~site:"Campaign"
        "summary requested before the finish event"
  in
  let wall = Sim.Time.add finished st.setup.su_rebalance in
  let inplace = ref 0 and shadow = ref 0 and drained = ref 0 in
  let retried = ref 0 and exposed = ref 0 in
  Array.iter
    (function
      | H_done (Upgraded_inplace, _) -> incr inplace
      | H_done (Shadow_cutover, _) -> incr shadow
      | H_done (Drained, _) -> incr drained
      | H_done (Deferred_resolved, _) -> incr retried
      | H_done (Deferred_exposed, _) -> incr exposed
      | _ ->
        Hypertp_error.raise_error ~site:"Campaign" "unfinished host in summary")
    st.hstates;
  {
    s_region = region;
    s_hosts = Array.length st.setup.su_tasks;
    s_vms = st.cfg.nodes * st.cfg.vms_per_node;
    s_wall_clock = wall;
    s_exposed_host_hours =
      st.exposure_acc +. (float_of_int st.n_deferred_exposed *. hours wall);
    s_baseline_exposed_host_hours = float_of_int st.cfg.nodes *. hours wall;
    s_breaker_trips = st.trips;
    s_inplace = !inplace;
    s_shadow = !shadow;
    s_drained = !drained;
    s_retried = !retried;
    s_exposed = !exposed;
    s_attempts = Array.fold_left ( + ) 0 st.attempts;
    s_events = Sim.Vec.length st.entries / 3;
    s_resumes = resumes;
  }

(* Each region is a full campaign whose seed is derived from the fleet
   seed and the region name — the same pure-function-of-(config, key)
   scheme the admission decisions use — so a region's entire journal is
   independent of when, where, or on which domain it ran.  That is the
   whole byte-identity argument: Sequential, Rotated and Parallel only
   reorder calls to pure functions. *)
let region_config cfg (r : Topology.region) =
  {
    cfg with
    nodes = r.Topology.rg_hosts;
    vms_per_node = r.Topology.rg_vms_per_host;
    shadow_spares =
      (if r.Topology.rg_spares > 0 then r.Topology.rg_spares
       else cfg.shadow_spares);
    seed =
      Int64.logxor cfg.seed
        (Int64.of_int (Hashtbl.hash ("fleet-region", r.Topology.rg_name)));
  }

let region_fault fault (r : Topology.region) =
  Option.map
    (fun f ->
      Fault.make
        ~seed:
          (Int64.logxor (Fault.seed f)
             (Int64.of_int (Hashtbl.hash ("fleet-region", r.Topology.rg_name))))
        (Fault.injections f))
    fault

(* Run one region's campaign to completion, surviving controller
   crashes the way [run_to_completion] does, without ever building the
   per-host report. *)
let complete_st ?fault cfg =
  let rec go resumes ctx =
    match
      try
        Sim.Engine.run ctx.eng;
        None
      with Controller_died -> Some (make_journal ctx.st)
    with
    | None -> (ctx.st, resumes)
    | Some j -> go (resumes + 1) (resume_st ?fault j)
  in
  go 0 (start_st ?fault cfg)

let tmax a b = if Sim.Time.to_ns a >= Sim.Time.to_ns b then a else b

let run_fleet ?ctx:run_ctx ?fault ?sharding ~topology cfg =
  let c = Hypertp.Ctx.resolve ?ctx:run_ctx ?fault ?sharding () in
  let topology = Topology.validate_exn topology in
  let mode = c.Hypertp.Ctx.sharding in
  (match Sim.Shard.validate mode with
  | Ok () -> ()
  | Error msg -> Hypertp_error.raise_error ~site:"Campaign.run_fleet" msg);
  let regions = Topology.regions topology in
  let n = Array.length regions in
  (* obs/metrics are deliberately not threaded into the shards: a
     shared tracer is not domain-safe, and attaching one would make the
     emitted trace depend on the schedule.  The fleet-level knobs that
     matter (fault plan, config) are re-derived per region. *)
  let outcomes =
    Sim.Shard.map mode n (fun i ->
        let r = regions.(i) in
        let rcfg = region_config cfg r in
        let rfault = region_fault c.Hypertp.Ctx.fault r in
        (* OCaml 5 GC counters are per-domain and a task runs on one
           domain start to finish, so the delta is this region's own
           allocation even under [Parallel]. *)
        let w0 = Gc.minor_words () in
        let st, resumes = complete_st ?fault:rfault rcfg in
        let words = Gc.minor_words () -. w0 in
        (make_summary ~region:r.Topology.rg_name ~resumes st,
         make_journal st, words))
  in
  let summaries = Array.map (fun (s, _, _) -> s) outcomes in
  let journals = Array.map (fun (_, j, _) -> j) outcomes in
  {
    f_topology = topology;
    f_mode = mode;
    f_shards = Sim.Shard.shards_used mode n;
    f_domains = Sim.Shard.domains_used mode n;
    f_summaries = summaries;
    f_journals = journals;
    f_wall_clock =
      Array.fold_left (fun acc s -> tmax acc s.s_wall_clock) Sim.Time.zero
        summaries;
    f_exposed_host_hours =
      Array.fold_left (fun acc s -> acc +. s.s_exposed_host_hours) 0.0
        summaries;
    f_baseline_exposed_host_hours =
      Array.fold_left
        (fun acc s -> acc +. s.s_baseline_exposed_host_hours)
        0.0 summaries;
    f_breaker_trips =
      Array.fold_left (fun acc s -> acc + s.s_breaker_trips) 0 summaries;
    f_resumes = Array.fold_left (fun acc s -> acc + s.s_resumes) 0 summaries;
    f_minor_words =
      Array.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 outcomes;
  }

(* Order-insensitive inputs only: the digest covers topology, config,
   every region's summary scalars and packed journal words — and
   nothing schedule-dependent (mode, domains, timings, allocation), so
   Sequential, Rotated and Parallel runs of the same fleet must agree
   on it.  The bench self-check and CI pin exactly that. *)
let fleet_digest fr =
  let h = ref 0x1505 in
  let mix v = h := (((!h lsl 5) + !h) lxor v) land max_int in
  mix (Hashtbl.hash (Topology.spec fr.f_topology));
  Array.iter2
    (fun s j ->
      mix (Hashtbl.hash s.s_region);
      mix (Sim.Time.to_ns s.s_wall_clock);
      mix (Hashtbl.hash (Int64.bits_of_float s.s_exposed_host_hours));
      mix s.s_breaker_trips;
      mix s.s_inplace;
      mix s.s_shadow;
      mix s.s_drained;
      mix s.s_retried;
      mix s.s_exposed;
      mix s.s_attempts;
      mix s.s_events;
      mix s.s_resumes;
      mix (Hashtbl.hash j.j_config);
      Array.iter (fun nm -> mix (Hashtbl.hash nm)) j.j_names;
      Sim.Vec.iter mix j.j_words)
    fr.f_summaries fr.f_journals;
  !h

let fleet_magic = "hypertp-fleet-journal v1"

let fleet_journals_to_string fr =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (fleet_magic ^ "\n");
  Buffer.add_string buf ("topology " ^ Topology.spec fr.f_topology ^ "\n");
  Array.iter2
    (fun s j ->
      Buffer.add_string buf ("region " ^ s.s_region ^ "\n");
      Buffer.add_string buf (journal_to_string j))
    fr.f_summaries fr.f_journals;
  Buffer.contents buf

let pp_summary fmt s =
  Format.fprintf fmt
    "%s: %d hosts / %d VMs, wall-clock %a, exposure %.3f host-hours \
     (baseline %.3f); %d inplace / %d shadow / %d drained / %d retried / \
     %d exposed; %d attempts, %d events, %d trips, %d resumes"
    s.s_region s.s_hosts s.s_vms Sim.Time.pp s.s_wall_clock
    s.s_exposed_host_hours s.s_baseline_exposed_host_hours s.s_inplace
    s.s_shadow s.s_drained s.s_retried s.s_exposed s.s_attempts s.s_events
    s.s_breaker_trips s.s_resumes

(* Deliberately schedule-free (no mode, no domain count, no timings):
   CI diffs this output byte-for-byte between sequential and sharded
   runs of the same fleet. *)
let pp_fleet fmt fr =
  Format.fprintf fmt
    "@[<v>fleet: %d regions, %d hosts, %d VMs (topology %s)@,\
     wall-clock %a, exposure %.3f host-hours (baseline %.3f), breaker \
     trips %d, resumes %d@,digest %x@,%a@]"
    (Topology.n_regions fr.f_topology)
    (Topology.hosts fr.f_topology)
    (Topology.vms fr.f_topology)
    (Topology.spec fr.f_topology)
    Sim.Time.pp fr.f_wall_clock fr.f_exposed_host_hours
    fr.f_baseline_exposed_host_hours fr.f_breaker_trips fr.f_resumes
    (fleet_digest fr)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_summary)
    (Array.to_list fr.f_summaries)
