lib/kvm/kvm.mli: Cfs Hv Kvmtool
