(* Tests for the workload models: schedules, profiles, application
   timelines and the SPEC dataset. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let qtest = QCheck_alcotest.to_alcotest
let rng () = Sim.Rng.create 0x30DL

open Workload

let xen = Profile.P_xen
let kvm = Profile.P_kvm

(* --- Sched --- *)

let transplant_sched ?(at = 50.0) ?(gap = 2.0) () =
  Sched.make ~initial:xen
    [ (at, Sched.Stopped); (at +. gap, Sched.Running kvm) ]

let test_sched_condition_at () =
  let s = transplant_sched () in
  checkb "before" true (Sched.condition_at s 10.0 = Sched.Running xen);
  checkb "during" true (Sched.condition_at s 51.0 = Sched.Stopped);
  checkb "after" true (Sched.condition_at s 60.0 = Sched.Running kvm);
  checkb "boundary inclusive" true (Sched.condition_at s 50.0 = Sched.Stopped)

let test_sched_work_between () =
  let s = transplant_sched () in
  let base = function Profile.P_xen -> 10.0 | Profile.P_kvm -> 20.0 | Profile.P_bhyve -> 15.0 in
  checkf "pure xen" 100.0 (Sched.work_between s 0.0 10.0 ~base);
  checkf "stopped" 0.0 (Sched.work_between s 50.0 52.0 ~base);
  checkf "pure kvm" 200.0 (Sched.work_between s 52.0 62.0 ~base);
  checkf "straddling" (10.0 +. 40.0)
    (Sched.work_between s 49.0 54.0 ~base)

let test_sched_completion_time () =
  let s = transplant_sched () in
  let base = function Profile.P_xen | Profile.P_kvm | Profile.P_bhyve -> 1.0 in
  (* 10 units from t=45: 5 before the pause, 2 paused, 5 after. *)
  checkf ~eps:1e-6 "pause inserted" 57.0
    (Sched.completion_time s ~start:45.0 ~work:10.0 ~base);
  checkf ~eps:1e-6 "untouched when clear" 10.0
    (Sched.completion_time s ~start:0.0 ~work:10.0 ~base)

let test_sched_degraded () =
  let s =
    Sched.make ~initial:xen [ (10.0, Sched.Degraded (xen, 2.0)) ]
  in
  let base = function Profile.P_xen | Profile.P_kvm | Profile.P_bhyve -> 4.0 in
  checkf "halved rate" 2.0 (Sched.rate_factor s 11.0 ~base);
  checkf ~eps:1e-6 "stretched completion" 20.0
    (Sched.completion_time s ~start:10.0 ~work:40.0 ~base -. 10.0)

let test_sched_validation () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Sched.make: breakpoints not increasing") (fun () ->
      ignore (Sched.make ~initial:xen [ (5.0, Sched.Stopped); (5.0, Sched.Running xen) ]));
  Alcotest.check_raises "stretch below 1"
    (Invalid_argument "Sched.make: stretch factor below 1") (fun () ->
      ignore (Sched.make ~initial:xen [ (5.0, Sched.Degraded (xen, 0.5)) ]))

let prop_sched_work_additive =
  QCheck.Test.make ~name:"work_between is additive over adjacent windows"
    QCheck.(pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (a, b) ->
      let t0 = Float.min a b and tmid = (a +. b) /. 2.0 and t1 = Float.max a b in
      let s = transplant_sched () in
      let base = function Profile.P_xen -> 3.0 | Profile.P_kvm -> 7.0 | Profile.P_bhyve -> 5.0 in
      let whole = Sched.work_between s t0 t1 ~base in
      let split =
        Sched.work_between s t0 tmid ~base +. Sched.work_between s tmid t1 ~base
      in
      Float.abs (whole -. split) < 1e-6)

(* --- Profile --- *)

let test_profile_redis_gap () =
  let gain = Profile.redis_qps kvm /. Profile.redis_qps xen in
  checkb "KVM ~37% faster for redis (Fig 11)" true
    (gain > 1.30 && gain < 1.45)

let test_profile_mysql_factors () =
  checkf "latency x3.52 (Fig 12)" 3.52
    (Profile.precopy_latency_factor Vmstate.Vm.Wl_mysql);
  checkf "qps x0.32 (Fig 12)" 0.32
    (Profile.precopy_qps_factor Vmstate.Vm.Wl_mysql)

let test_profile_dirty_rates () =
  let rate w =
    Profile.dirty_pages_per_sec w ~ram:(Hw.Units.gib 8)
      ~page_kind:Hw.Units.Page_2m
  in
  checkb "idle tiny" true (rate Vmstate.Vm.Wl_idle < 200.0);
  checkb "redis heavy" true (rate Vmstate.Vm.Wl_redis > 1000.0);
  checkb "mysql heaviest" true
    (rate Vmstate.Vm.Wl_mysql > rate Vmstate.Vm.Wl_redis)

(* --- Spec --- *)

let test_spec_dataset () =
  checki "23 applications" 23 (List.length Spec_data.all);
  let deepsjeng = Spec_data.find "deepsjeng" in
  checkf "xen column" 457.75 deepsjeng.Spec_data.xen_time_s;
  checkf "kvm column" 456.65 deepsjeng.Spec_data.kvm_time_s

let test_spec_plain_run_no_degradation () =
  let app = Spec_data.find "gcc" in
  let run =
    Spec.run_app ~rng:(rng ()) ~sched:(Sched.always xen)
      ~residual_overhead_s:0.0 app
  in
  checkb "sub-1% vs xen baseline" true
    (Float.abs run.Spec.degradation_vs_xen_pct < 1.0)

let test_spec_transplant_degradation_band () =
  (* Downtime ~2.6 s in the middle of each run; paper Table 5 keeps the
     max degradation under ~5 %. *)
  let sched at =
    Sched.make ~initial:xen
      [ (at, Sched.Stopped); (at +. 2.6, Sched.Running kvm) ]
  in
  let runs =
    List.map
      (fun app ->
        Spec.run_app ~rng:(rng ())
          ~sched:(sched (Spec_data.base_time app xen /. 2.0))
          ~residual_overhead_s:2.0 app)
      Spec_data.all
  in
  let worst = Spec.max_degradation runs in
  checkb "max degradation in (0, 6%)" true (worst > 0.0 && worst < 6.0)

(* --- Redis --- *)

let test_redis_timeline_gap () =
  let sched = transplant_sched ~at:50.0 ~gap:9.0 () in
  let t = Redis.qps_timeline ~rng:(rng ()) ~sched ~duration_s:120.0 in
  checkf "zero during gap" 0.0 (Redis.mean_qps t ~from_s:51.0 ~until_s:58.0);
  let before = Redis.mean_qps t ~from_s:10.0 ~until_s:45.0 in
  let after = Redis.mean_qps t ~from_s:70.0 ~until_s:115.0 in
  checkb "before near xen rate" true
    (Float.abs (before -. Profile.redis_qps xen) /. Profile.redis_qps xen < 0.1);
  checkb "post-transplant improvement (Fig 11)" true
    (after /. before > 1.25)

(* --- Mysql --- *)

let test_mysql_timelines () =
  let sched =
    Sched.make ~initial:xen
      [ (40.0, Sched.Degraded (xen, 1.1)); (116.0, Sched.Stopped);
        (116.2, Sched.Running kvm) ]
  in
  let lat, qps = Mysql.timelines ~rng:(rng ()) ~sched ~duration_s:150.0 in
  let lat_before =
    Sim.Trace.mean_between lat (Sim.Time.sec 0) (Sim.Time.sec 39)
  in
  let lat_during =
    Sim.Trace.mean_between lat (Sim.Time.sec 45) (Sim.Time.sec 110)
  in
  checkb "+252% latency during pre-copy (Fig 12)" true
    (lat_during /. lat_before > 2.8 && lat_during /. lat_before < 4.2);
  let qps_before =
    Sim.Trace.mean_between qps (Sim.Time.sec 0) (Sim.Time.sec 39)
  in
  let qps_during =
    Sim.Trace.mean_between qps (Sim.Time.sec 45) (Sim.Time.sec 110)
  in
  checkb "-68% throughput during pre-copy" true
    (qps_during /. qps_before > 0.25 && qps_during /. qps_before < 0.45)

(* --- Darknet --- *)

let test_darknet_baseline () =
  let r =
    Darknet.train ~rng:(rng ()) ~sched:(Sched.always xen) ~iterations:100
  in
  checki "100 iterations" 100 (List.length r.Darknet.durations_s);
  checkb "mean near 2.044 (Table 6)" true
    (Float.abs (r.Darknet.mean_s -. 2.044) < 0.05)

let test_darknet_inplace_pause () =
  let sched = transplant_sched ~at:50.0 ~gap:2.9 () in
  let r = Darknet.train ~rng:(rng ()) ~sched ~iterations:100 in
  checkb "longest iteration eats the pause (Table 6: 4.97)" true
    (r.Darknet.longest_s > 4.3 && r.Darknet.longest_s < 5.6)

let test_darknet_migration_slowdown () =
  let sched =
    Sched.make ~initial:xen [ (10.0, Sched.Degraded (xen, 1.25)) ]
  in
  let r = Darknet.train ~rng:(rng ()) ~sched ~iterations:50 in
  checkb "longest ~2.67 under migration (Table 6)" true
    (r.Darknet.longest_s > 2.4 && r.Darknet.longest_s < 2.9)

(* --- Streaming --- *)

let test_streaming_survives_short_gap () =
  let sched = transplant_sched ~at:30.0 ~gap:6.0 () in
  let r = Streaming.stream ~rng:(rng ()) ~sched ~duration_s:120.0 () in
  checkf "no stall behind a 10s buffer" 0.0 r.Streaming.stall_s;
  checkb "buffer dipped below half" true (r.Streaming.buffer_low_s > 0.0)

let test_streaming_stalls_on_long_gap () =
  let sched = transplant_sched ~at:30.0 ~gap:15.0 () in
  let r = Streaming.stream ~rng:(rng ()) ~sched ~duration_s:120.0 () in
  checkb "stalls past the buffer" true (r.Streaming.stall_s > 2.0)

let suites =
  [
    ( "workload.sched",
      [
        Alcotest.test_case "condition_at" `Quick test_sched_condition_at;
        Alcotest.test_case "work integration" `Quick test_sched_work_between;
        Alcotest.test_case "completion time" `Quick test_sched_completion_time;
        Alcotest.test_case "degraded stretch" `Quick test_sched_degraded;
        Alcotest.test_case "validation" `Quick test_sched_validation;
        qtest prop_sched_work_additive;
      ] );
    ( "workload.profile",
      [
        Alcotest.test_case "redis platform gap" `Quick test_profile_redis_gap;
        Alcotest.test_case "mysql precopy factors" `Quick test_profile_mysql_factors;
        Alcotest.test_case "dirty rates ordered" `Quick test_profile_dirty_rates;
      ] );
    ( "workload.spec",
      [
        Alcotest.test_case "dataset" `Quick test_spec_dataset;
        Alcotest.test_case "clean run" `Quick test_spec_plain_run_no_degradation;
        Alcotest.test_case "degradation band (Table 5)" `Quick
          test_spec_transplant_degradation_band;
      ] );
    ( "workload.apps",
      [
        Alcotest.test_case "redis timeline (Fig 11)" `Quick test_redis_timeline_gap;
        Alcotest.test_case "mysql timelines (Fig 12)" `Quick test_mysql_timelines;
        Alcotest.test_case "darknet baseline" `Quick test_darknet_baseline;
        Alcotest.test_case "darknet pause (Table 6)" `Quick test_darknet_inplace_pause;
        Alcotest.test_case "darknet migration slowdown" `Quick
          test_darknet_migration_slowdown;
        Alcotest.test_case "streaming short gap" `Quick test_streaming_survives_short_gap;
        Alcotest.test_case "streaming long gap" `Quick test_streaming_stalls_on_long_gap;
      ] );
  ]
