let page_bytes = 4096
let node_header_bytes = 16 (* next-node pointer + entry count *)
let entries_per_node = (page_bytes - node_header_bytes) / 8 (* 510 *)

(* A file pointer is an MFN (8 B); root pages keep a 16 B header. *)
let file_pointers_per_root = (page_bytes - 16) / 8
let root_pointers_per_pointer_page = (page_bytes - 16) / 8

let div_ceil a b = (a + b - 1) / b

let node_pages_for ~entries =
  if entries < 0 then invalid_arg "Layout.node_pages_for: negative";
  if entries = 0 then 1 else div_ceil entries entries_per_node

let root_pages_for ~files =
  if files <= 0 then invalid_arg "Layout.root_pages_for: non-positive";
  div_ceil files file_pointers_per_root

type accounting = {
  pointer_pages : int;
  root_pages : int;
  file_info_pages : int;
  node_pages : int;
  total_pages : int;
  total_bytes : int;
  entry_count : int;
}

let account ~entries_per_file =
  let files = List.length entries_per_file in
  if files = 0 then invalid_arg "Layout.account: no files";
  let node_pages =
    List.fold_left (fun acc n -> acc + node_pages_for ~entries:n) 0
      entries_per_file
  in
  let root_pages = root_pages_for ~files in
  let pointer_pages = 1 in
  let file_info_pages = files in
  let total_pages = pointer_pages + root_pages + file_info_pages + node_pages in
  {
    pointer_pages;
    root_pages;
    file_info_pages;
    node_pages;
    total_pages;
    total_bytes = total_pages * page_bytes;
    entry_count = List.fold_left ( + ) 0 entries_per_file;
  }

let pp_accounting fmt a =
  Format.fprintf fmt
    "pram: %d entries in %d node pages (+%d file info, %d root, %d pointer) = %a"
    a.entry_count a.node_pages a.file_info_pages a.root_pages a.pointer_pages
    Hw.Units.pp_bytes a.total_bytes
