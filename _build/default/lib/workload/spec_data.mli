(** SPECrate 2017 application dataset.

    The per-application baseline execution times on KVM and Xen are the
    paper's own measurements (Table 5, first two columns); they are the
    ground truth from which the transplant experiments derive the
    InPlaceTP/MigrationTP columns. *)

type app = {
  name : string;
  suite : [ `Int | `Fp ];
  kvm_time_s : float;
  xen_time_s : float;
}

val all : app list
(** The 23 SPECrate applications of Table 5, in paper order. *)

val find : string -> app
(** Raises [Not_found]. *)

val base_time : app -> Profile.platform -> float
val names : string list
