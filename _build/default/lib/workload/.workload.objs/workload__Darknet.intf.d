lib/workload/darknet.mli: Sched Sim
