(* The unified run context.  Every engine entry point used to take the
   same five optional arguments (options, rng, fault, obs, metrics);
   [Ctx.t] bundles them so call sites thread one value and new knobs
   can be added without touching every signature.

   [resolve] implements the compatibility contract: legacy optional
   arguments, when given, override the corresponding [ctx] field, so
   the deprecated entry points are thin wrappers that delegate here
   and produce byte-identical behaviour. *)

type audit_config = { audit_scrub : bool }

let audit_default = { audit_scrub = true }

type shadow_config = { shadow_ladder : bool }

let shadow_default = { shadow_ladder = true }

type sharding = Sim.Shard.mode =
  | Sequential
  | Rotated of int
  | Parallel of { shards : int; domains : int }

type t = {
  options : Options.t;  (** InPlaceTP optimisation toggles *)
  rng : Sim.Rng.t option;  (** [None] means each engine's default stream *)
  fault : Fault.t option;
  obs : Obs.Tracer.t option;
  metrics : Obs.Metrics.t option;
  audit : audit_config option;
      (** [Some _] arms the post-commit residual audit; [None] (the
          default) skips it, keeping default runs byte-identical *)
  shadow : shadow_config option;
      (** shadow-host cutover policy; [None] means the engine default
          ({!shadow_default}: the degradation ladder enabled) *)
  sharding : sharding;
      (** region-shard schedule for fleet-level entry points;
          [Sequential] (the default) is what every legacy entry point
          resolves to, and all modes are byte-identical for the same
          seed — the knob only trades wall-clock *)
}

let default =
  { options = Options.default; rng = None; fault = None; obs = None;
    metrics = None; audit = None; shadow = None; sharding = Sequential }

let make ?(options = Options.default) ?rng ?fault ?obs ?metrics ?audit ?shadow
    ?(sharding = Sequential) () =
  { options; rng; fault; obs; metrics; audit; shadow; sharding }

let with_options options t = { t with options }
let with_rng rng t = { t with rng = Some rng }
let with_fault fault t = { t with fault = Some fault }
let with_obs obs t = { t with obs = Some obs }
let with_metrics metrics t = { t with metrics = Some metrics }
let with_audit audit t = { t with audit = Some audit }
let with_shadow shadow t = { t with shadow = Some shadow }
let with_sharding sharding t = { t with sharding }

let resolve ?ctx ?options ?rng ?fault ?obs ?metrics ?audit ?shadow ?sharding ()
    =
  let base = match ctx with Some c -> c | None -> default in
  {
    options = (match options with Some o -> o | None -> base.options);
    rng = (match rng with Some _ -> rng | None -> base.rng);
    fault = (match fault with Some _ -> fault | None -> base.fault);
    obs = (match obs with Some _ -> obs | None -> base.obs);
    metrics = (match metrics with Some _ -> metrics | None -> base.metrics);
    audit = (match audit with Some _ -> audit | None -> base.audit);
    shadow = (match shadow with Some _ -> shadow | None -> base.shadow);
    sharding = (match sharding with Some s -> s | None -> base.sharding);
  }
