(** BtrPlace-style reconfiguration planning (Hermenier et al. [20]).

    The cluster upgrade of section 5.4: hosts are taken offline in
    groups; VMs that cannot tolerate InPlaceTP downtime are migrated to
    online hosts under capacity constraints, the host is upgraded
    (InPlaceTP transplants the remaining VMs with it), and the next
    group follows.  A final rebalance restores an even spread.  The plan
    lists every action in execution order. *)

type action =
  | Migrate of { vm : Model.vm; src : string; dst : string }
  | Take_offline of string
  | Upgrade_inplace of { node : string; vms_in_place : int }
  | Bring_online of string

type plan = {
  actions : action array;  (** every action, in execution order *)
  migration_count : int;
  inplace_vm_count : int; (** VMs upgraded without moving *)
}

exception No_capacity of string

val plan_upgrade : ?group_size:int -> Model.t -> plan
(** Generate and {e apply} the rolling-upgrade plan on the model (the
    model ends fully upgraded and rebalanced).  Raises {!No_capacity}
    if evicted VMs cannot be placed anywhere.  Default group size 1. *)

val capacity_safe : Model.t -> bool
(** No node over capacity, every VM placed exactly once. *)

val max_concurrent_drains : Model.t -> int
(** Capacity-aware admission bound for a supervised rolling upgrade:
    the largest number of hosts that may drain simultaneously while the
    remaining online nodes can still absorb their whole VM load (the
    fallback path drains even InPlaceTP-compatible VMs, so each
    draining host is charged its full placement).  Always at least 1 —
    with no spare capacity at all the plan itself would have raised
    {!No_capacity}. *)

val pp_plan : Format.formatter -> plan -> unit
