type workload_kind =
  | Wl_idle
  | Wl_redis
  | Wl_mysql
  | Wl_spec of string
  | Wl_darknet
  | Wl_streaming

type config = {
  name : string;
  vcpus : int;
  ram : Hw.Units.bytes_;
  page_kind : Hw.Units.page_kind;
  device_kinds : Device.kind list;
  workload : workload_kind;
  inplace_compatible : bool;
  compat_ioapic_pins : int option;
}

let config ?(vcpus = 1) ?(ram = Hw.Units.gib 1) ?(page_kind = Hw.Units.Page_2m)
    ?(device_kinds = [ Device.Net_emulated; Device.Blk_emulated; Device.Serial_console ])
    ?(workload = Wl_idle) ?(inplace_compatible = true) ?compat_ioapic_pins
    ~name () =
  if vcpus <= 0 then invalid_arg "Vm.config: non-positive vCPUs";
  if ram <= 0 then invalid_arg "Vm.config: non-positive RAM";
  (match compat_ioapic_pins with
  | Some n when n <= 0 -> invalid_arg "Vm.config: non-positive IOAPIC cap"
  | Some _ | None -> ());
  { name; vcpus; ram; page_kind; device_kinds; workload; inplace_compatible;
    compat_ioapic_pins }

type run_state = Running | Paused | Suspended

type t = {
  config : config;
  vcpus : Vcpu.t array;
  ioapic : Ioapic.t;
  pit : Pit.t;
  devices : Device.t array;
  mem : Guest_mem.t;
  mutable run_state : run_state;
}

let create ~pmem ~rng ?(ioapic_pins = Ioapic.kvm_pins) (config : config) =
  let vcpus =
    Array.init config.vcpus (fun index -> Vcpu.generate rng ~index)
  in
  let pins =
    match config.compat_ioapic_pins with
    | Some cap -> Stdlib.min cap ioapic_pins
    | None -> ioapic_pins
  in
  let ioapic = Ioapic.generate rng ~pins in
  let pit = Pit.generate rng in
  let devices =
    Array.of_list
      (List.mapi
         (fun id kind ->
           Device.generate rng ~id ~kind
             ~guest_frames:(Hw.Units.frames_of_bytes config.ram) ())
         config.device_kinds)
  in
  let mem =
    Guest_mem.create ~pmem ~rng ~bytes:config.ram ~page_kind:config.page_kind ()
  in
  { config; vcpus; ioapic; pit; devices; mem; run_state = Running }

let pause t =
  t.run_state <- Paused;
  (* The section 4.2.3 handshake: pausing the guest quiesces its devices
     (in-flight ring buffers complete), leaving driver and emulation in
     a consistent state. *)
  Array.iteri
    (fun i d ->
      if d.Device.run_state = Device.Dev_running then
        t.devices.(i) <- Device.pause d)
    t.devices

let resume t =
  t.run_state <- Running;
  (* Resuming the guest notifies paused device drivers to continue
     (section 4.2.3); unplugged devices wait for an explicit rescan. *)
  Array.iteri
    (fun i d ->
      if d.Device.run_state = Device.Dev_paused then
        t.devices.(i) <- Device.resume d)
    t.devices
let suspend t = t.run_state <- Suspended
let is_running t = t.run_state = Running

let total_tcp_connections t =
  Array.fold_left (fun acc d -> acc + d.Device.tcp_connections) 0 t.devices

let equal_platform a b =
  Array.length a.vcpus = Array.length b.vcpus
  && Array.for_all2 Vcpu.equal a.vcpus b.vcpus
  && Ioapic.equal a.ioapic b.ioapic
  && Pit.equal a.pit b.pit

let pp_workload fmt = function
  | Wl_idle -> Format.pp_print_string fmt "idle"
  | Wl_redis -> Format.pp_print_string fmt "redis"
  | Wl_mysql -> Format.pp_print_string fmt "mysql"
  | Wl_spec app -> Format.fprintf fmt "spec:%s" app
  | Wl_darknet -> Format.pp_print_string fmt "darknet"
  | Wl_streaming -> Format.pp_print_string fmt "streaming"

let pp fmt t =
  let state =
    match t.run_state with
    | Running -> "running"
    | Paused -> "paused"
    | Suspended -> "suspended"
  in
  Format.fprintf fmt "%s: %d vCPU, %a, %a pages, %a [%s]" t.config.name
    t.config.vcpus Hw.Units.pp_bytes t.config.ram Hw.Units.pp_page_kind
    t.config.page_kind pp_workload t.config.workload state
