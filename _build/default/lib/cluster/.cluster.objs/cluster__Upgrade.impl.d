lib/cluster/upgrade.ml: Btrplace Format Hw List Migration Model Sim Vmstate Workload Xenhv
