(** Deterministic pseudo-random number generation.

    A splitmix64 generator: fast, reproducible across platforms, and
    splittable so that independent subsystems (per-VM noise, per-link
    jitter, planner tie-breaking) draw from independent streams without
    perturbing each other when experiment parameters change. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split r] derives an independent generator; [r] advances by one draw. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int r bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)

val float : t -> float -> float
(** [float r bound] is uniform in [\[0, bound)]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val jitter : t -> float -> float
(** [jitter r pct] is a multiplicative factor uniform in
    [\[1-pct, 1+pct\]], used to add small measurement-style noise to
    simulated durations. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
