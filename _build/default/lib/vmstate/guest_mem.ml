type t = {
  pmem : Hw.Pmem.t;
  page_kind : Hw.Units.page_kind;
  bytes : Hw.Units.bytes_;
  backing : Hw.Frame.Mfn.t array; (* per guest page: start of host extent *)
  contents : int64 array;         (* per guest page: content tag *)
  dirty : Bytes.t;                (* bitset, one bit per guest page *)
  mutable dirty_count : int;
  mutable freed : bool;
}

let frames_per_page t = Hw.Units.frames_per_page t.page_kind

let create ~pmem ~rng ~bytes ~page_kind () =
  if bytes <= 0 then invalid_arg "Guest_mem.create: non-positive size";
  let npages = Hw.Units.pages_of_bytes page_kind bytes in
  let fpp = Hw.Units.frames_per_page page_kind in
  let backing = Array.make npages (Hw.Frame.Mfn.of_int 0) in
  (* Allocate page by page so 2 MiB pages are one aligned extent each.
     The allocator scatters chunks, so consecutive guest pages usually
     land on non-consecutive host frames — the situation PRAM handles. *)
  let filled = ref 0 in
  while !filled < npages do
    let want_pages = Stdlib.min (npages - !filled) (512 / fpp) in
    let extents = Hw.Pmem.alloc_extents pmem ~align:fpp (want_pages * fpp) in
    List.iter
      (fun (start, len) ->
        assert (len mod fpp = 0);
        for i = 0 to (len / fpp) - 1 do
          backing.(!filled) <- Hw.Frame.Mfn.add start (i * fpp);
          incr filled
        done)
      extents
  done;
  let contents = Array.init npages (fun _ -> Sim.Rng.int64 rng) in
  let t =
    {
      pmem;
      page_kind;
      bytes;
      backing;
      contents;
      dirty = Bytes.make ((npages + 7) / 8) '\000';
      dirty_count = 0;
      freed = false;
    }
  in
  Array.iteri (fun i tag -> Hw.Pmem.write pmem backing.(i) tag) contents;
  ignore (frames_per_page t);
  t

let page_kind t = t.page_kind
let page_count t = Array.length t.backing
let bytes t = t.bytes
let pmem t = t.pmem

let check_page t i =
  if t.freed then invalid_arg "Guest_mem: use after free";
  if i < 0 || i >= page_count t then invalid_arg "Guest_mem: page out of range"

let gfn_of_page t i =
  check_page t i;
  Hw.Frame.Gfn.of_int (i * frames_per_page t)

let mfn_of_page t i =
  check_page t i;
  t.backing.(i)

let is_dirty t i =
  Char.code (Bytes.get t.dirty (i / 8)) land (1 lsl (i mod 8)) <> 0

let set_dirty_bit t i =
  if not (is_dirty t i) then begin
    let b = Char.code (Bytes.get t.dirty (i / 8)) in
    Bytes.set t.dirty (i / 8) (Char.chr (b lor (1 lsl (i mod 8))));
    t.dirty_count <- t.dirty_count + 1
  end

let clear_dirty_bit t i =
  if is_dirty t i then begin
    let b = Char.code (Bytes.get t.dirty (i / 8)) in
    Bytes.set t.dirty (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8))));
    t.dirty_count <- t.dirty_count - 1
  end

let write_page t i v =
  check_page t i;
  t.contents.(i) <- v;
  Hw.Pmem.write t.pmem t.backing.(i) v;
  set_dirty_bit t i

let read_page t i =
  check_page t i;
  t.contents.(i)

let touch_random t rng n =
  let npages = page_count t in
  for _ = 1 to n do
    let i = Sim.Rng.int rng npages in
    write_page t i (Sim.Rng.int64 rng)
  done

let dirty_count t = t.dirty_count

let dirty_pages t =
  let acc = ref [] in
  for i = page_count t - 1 downto 0 do
    if is_dirty t i then acc := i :: !acc
  done;
  !acc

let clear_dirty t =
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.dirty_count <- 0

let clear_dirty_page t i =
  check_page t i;
  clear_dirty_bit t i

let set_all_dirty t =
  for i = 0 to page_count t - 1 do
    set_dirty_bit t i
  done

let extents t =
  let fpp = frames_per_page t in
  let npages = page_count t in
  let rec scan i acc =
    if i >= npages then List.rev acc
    else begin
      (* Extend a run while host frames stay consecutive. *)
      let start = i in
      let rec run j =
        if
          j + 1 < npages
          && Hw.Frame.Mfn.offset t.backing.(j + 1) t.backing.(j) = fpp
        then run (j + 1)
        else j
      in
      let stop = run start in
      let ext =
        ( gfn_of_page t start,
          t.backing.(start),
          (stop - start + 1) * fpp )
      in
      scan (stop + 1) (ext :: acc)
    end
  in
  scan 0 []

let checksum t =
  let mix acc v =
    let acc = Int64.logxor acc v in
    Int64.mul (Int64.add acc 0x9E3779B97F4A7C15L) 0xBF58476D1CE4E5B9L
  in
  Array.fold_left mix 0L t.contents

let verify_backing t =
  let bad = ref [] in
  for i = page_count t - 1 downto 0 do
    match Hw.Pmem.read t.pmem t.backing.(i) with
    | Some tag when Int64.equal tag t.contents.(i) -> ()
    | Some _ | None -> bad := (i, t.backing.(i)) :: !bad
  done;
  !bad

let free t =
  if not t.freed then begin
    t.freed <- true;
    let fpp = Hw.Units.frames_per_page t.page_kind in
    Array.iter (fun start -> Hw.Pmem.free_extent t.pmem start fpp) t.backing
  end
