(** Physical CPU topology. *)

type t = {
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  freq_ghz : float;
}

val create :
  sockets:int -> cores_per_socket:int -> threads_per_core:int -> freq_ghz:float -> t
(** Raises [Invalid_argument] on non-positive counts or frequency. *)

val total_cores : t -> int
val total_threads : t -> int

val usable_threads : t -> reserved:int -> int
(** Threads left for guest/management work after reserving [reserved]
    threads for the administration OS (dom0 / host Linux); at least 1. *)

val pp : Format.formatter -> t -> unit
