lib/kvm/ioctl_stream.mli: Format Vmstate
