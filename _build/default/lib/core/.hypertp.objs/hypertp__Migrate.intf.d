lib/core/migrate.mli: Format Hv Hw Sim Uisr
