type result = {
  durations_s : float list;
  mean_s : float;
  longest_s : float;
  total_s : float;
}

let train ~rng ~sched ~iterations =
  if iterations <= 0 then invalid_arg "Darknet.train: non-positive iterations";
  (* One iteration is a fixed amount of work; its wall-clock duration is
     whatever the schedule allows — pauses stretch the iteration they
     land in by the full downtime, Degraded phases stretch by their
     factor (the schedule's builder picks the per-workload slowdown). *)
  let base p = 1.0 /. Profile.darknet_iteration_s p in
  let rec run i at acc =
    if i = iterations then List.rev acc
    else begin
      let work = Sim.Rng.jitter rng 0.01 in
      let finish = Sched.completion_time sched ~start:at ~work ~base in
      run (i + 1) finish ((finish -. at) :: acc)
    end
  in
  let durations_s = run 0 0.0 [] in
  {
    durations_s;
    mean_s = Sim.Stats.mean durations_s;
    longest_s = List.fold_left Float.max 0.0 durations_s;
    total_s = List.fold_left ( +. ) 0.0 durations_s;
  }
