lib/cve/nvd.ml: Array Cvss Format Hashtbl Int List Option Printf String
