(** Xen event channels: the PV notification mechanism.

    Every paravirtual device pair (netfront/netback, blkfront/blkback),
    plus the console and xenstore rings, communicates through bound
    event-channel ports.  They are pure VM_i State: torn down with the
    source hypervisor and rebuilt by the target's device rescan — and,
    per section 2.1, the single largest source of critical Xen CVEs,
    which is why a transplant {e away} from Xen removes them from the
    attack surface entirely. *)

type port = int

type binding =
  | Unbound
  | Interdomain of { remote_domid : int; remote_port : port }
  | Virq of int            (** virtual IRQ (timer, debug, ...) *)
  | Pirq of int            (** physical IRQ pass-through *)

type t (** a domain's event-channel table *)

val create : unit -> t

val alloc_unbound : t -> remote_domid:int -> port
(** EVTCHNOP_alloc_unbound: reserve a port for [remote_domid] to bind. *)

val bind_interdomain : t -> port -> remote_domid:int -> remote_port:port -> unit
(** Raises [Invalid_argument] if the port is not unbound. *)

val bind_virq : t -> virq:int -> port
val close : t -> port -> unit
val binding : t -> port -> binding option

val send : t -> port -> unit
(** EVTCHNOP_send: set the port's pending bit. *)

val pending : t -> port -> bool
val consume : t -> port -> unit
val ports : t -> port list
val bound_count : t -> int
val state_bytes : t -> int

val close_all : t -> int
(** Tear every channel down (device unplug / transplant); returns how
    many were closed. *)
