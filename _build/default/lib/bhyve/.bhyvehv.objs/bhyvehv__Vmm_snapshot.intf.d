lib/bhyve/vmm_snapshot.mli: Format Vmstate
