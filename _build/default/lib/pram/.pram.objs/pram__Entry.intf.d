lib/pram/entry.mli: Format Hw Uisr
