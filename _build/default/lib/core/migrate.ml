type outcome = Completed | Aborted_link_failure of int

type vm_report = {
  vm_name : string;
  rounds : int;
  precopy_time : Sim.Time.t;
  downtime : Sim.Time.t;
  queue_wait : Sim.Time.t;
  total_time : Sim.Time.t;
  wire_bytes : Hw.Units.bytes_;
  state_bytes : int;
  fixups : Uisr.Fixup.t list;
  outcome : outcome;
}

type checks = {
  memory_equal : bool;
  connections_preserved : bool;
  management_consistent : bool;
}

type report = {
  kind : [ `Migration_tp | `Homogeneous ];
  src_hv : string;
  dst_hv : string;
  per_vm : vm_report list;
  total_time : Sim.Time.t;
  checks : checks;
}

let setup_time = Sim.Time.ms 400 (* connection + capability negotiation *)

let run ?(rng = Sim.Rng.create 0x3C4DL) ?fail_link ~(src : Hv.Host.t)
    ~(dst : Hv.Host.t) ?vm_names () =
  let (Hv.Host.Packed ((module S), _, _)) = Hv.Host.running_exn src in
  let (Hv.Host.Packed ((module D), _, _)) = Hv.Host.running_exn dst in
  let kind =
    if Hv.Kind.equal S.kind D.kind then `Homogeneous else `Migration_tp
  in
  let vm_names =
    match vm_names with Some l -> l | None -> Hv.Host.vm_names src
  in
  if vm_names = [] then invalid_arg "Migrate.run: no VMs";
  Log.info (fun m ->
      m "%s %s -> %s: %d VMs"
        (match kind with
        | `Migration_tp -> "MigrationTP"
        | `Homogeneous -> "homogeneous migration")
        S.name D.name (List.length vm_names));
  List.iter
    (fun n ->
      if Hv.Host.find_vm src n = None then
        invalid_arg ("Migrate.run: unknown VM " ^ n))
    vm_names;
  let streams = List.length vm_names in
  let nic = src.Hv.Host.machine.Hw.Machine.nic in
  let params = Migration.Precopy.default_params ~nic ~streams () in

  (* Pre-copy plans (VMs still running, degraded). *)
  let plans =
    List.map
      (fun n ->
        let vm = Option.get (Hv.Host.find_vm src n) in
        let cfg = vm.Vmstate.Vm.config in
        (* The wire moves 4 KiB dirty-log granules regardless of the
           guest's backing page size. *)
        let page_bytes = Hw.Units.page_size_4k in
        let total_pages = Hw.Units.frames_of_bytes cfg.ram in
        let dirty =
          Workload.Profile.dirty_pages_per_sec cfg.workload ~ram:cfg.ram
            ~page_kind:cfg.page_kind
        in
        (n, vm, Migration.Precopy.plan params ~page_bytes ~total_pages
                  ~dirty_pages_per_sec:dirty))
      vm_names
  in

  (* Stop-and-copy: pause, capture state, copy memory, restore on the
     destination.  The receive queue serialises on Xen (Fig. 8). *)
  let receiver_busy = ref Sim.Time.zero in
  let checks_memory = ref true in
  let checks_conns = ref true in
  let aborted (n, plan) round =
    (* Pre-copy is non-destructive: the source VM never paused and keeps
       running; nothing landed on the destination. *)
    let completed_rounds =
      List.filteri (fun i _ -> i <= round) plan.Migration.Precopy.rounds
    in
    let wasted =
      Sim.Time.sum
        (List.map (fun (r : Migration.Precopy.round) -> r.duration) completed_rounds)
    in
    {
      vm_name = n;
      rounds = List.length completed_rounds;
      precopy_time = wasted;
      downtime = Sim.Time.zero;
      queue_wait = Sim.Time.zero;
      total_time = Sim.Time.add setup_time wasted;
      wire_bytes =
        List.fold_left
          (fun acc (r : Migration.Precopy.round) ->
            acc
            + (r.pages_sent
              * Hw.Units.page_size_4k))
          0 completed_rounds;
      state_bytes = 0;
      fixups = [];
      outcome = Aborted_link_failure round;
    }
  in
  let per_vm =
    List.map
      (fun (n, (vm : Vmstate.Vm.t), plan) ->
        match fail_link with
        | Some (fail_name, fail_round)
          when String.equal fail_name n
               && fail_round < List.length plan.Migration.Precopy.rounds ->
          ignore vm;
          aborted (n, plan) fail_round
        | Some _ | None ->
        (* The live data path: multi-round pre-copy over the VM's actual
           dirty bits while it still runs (timings are reported from the
           calibrated analytic plan; the live rounds carry the data and
           verify convergence on real state). *)
        let dst_mem =
          Vmstate.Guest_mem.create ~pmem:dst.Hv.Host.pmem ~rng:dst.Hv.Host.rng
            ~bytes:vm.Vmstate.Vm.config.ram
            ~page_kind:vm.Vmstate.Vm.config.page_kind ()
        in
        let live =
          Migration.Precopy.run_live params ~src:vm.Vmstate.Vm.mem ~dst:dst_mem
            ~dirty_pages_per_sec:
              (Workload.Profile.dirty_pages_per_sec vm.Vmstate.Vm.config.workload
                 ~ram:vm.Vmstate.Vm.config.ram
                 ~page_kind:vm.Vmstate.Vm.config.page_kind)
            ~rng
        in
        assert live.Migration.Precopy.memory_equal;
        Hv.Host.pause_vm src n;
        let src_checksum = Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem in
        let src_conns = Vmstate.Vm.total_tcp_connections vm in
        let uisr = Hv.Host.to_uisr src n in
        let state_blob = Uisr.Codec.encode uisr in
        let state_bytes = Bytes.length state_blob in
        (* Proxy translation cost: a fraction of a full local save, paid
           inside the stop phase. *)
        let proxy_cost =
          let (Hv.Host.Packed ((module S'), shv, table)) =
            Hv.Host.running_exn src
          in
          match Hashtbl.find_opt table n with
          | None -> assert false
          | Some dom -> Sim.Time.scale 0.05 (S'.save_cost shv dom)
        in
        let fixups = Hv.Host.restore_from_uisr dst ~mem:dst_mem uisr in
        Hv.Host.resume_vm dst n;
        let dst_vm = Option.get (Hv.Host.find_vm dst n) in
        if
          not
            (Int64.equal (Vmstate.Guest_mem.checksum dst_vm.Vmstate.Vm.mem)
               src_checksum)
        then checks_memory := false;
        if Vmstate.Vm.total_tcp_connections dst_vm <> src_conns then
          checks_conns := false;
        Hv.Host.destroy_vm src n;
        (* Timing. *)
        let state_transfer =
          Hw.Nic.transfer_time nic ~streams state_bytes
        in
        let resume_cost =
          D.migration_resume_cost ~machine:dst.Hv.Host.machine
            ~vcpus:vm.Vmstate.Vm.config.vcpus
        in
        let service_time =
          Sim.Time.sum
            [ plan.Migration.Precopy.stop_copy_time; state_transfer;
              proxy_cost; resume_cost ]
        in
        let queue_wait =
          if D.sequential_migration_receive then !receiver_busy else Sim.Time.zero
        in
        if D.sequential_migration_receive then
          receiver_busy := Sim.Time.add !receiver_busy service_time;
        let jitter = Sim.Rng.jitter rng 0.03 in
        let downtime = Sim.Time.scale jitter (Sim.Time.add queue_wait service_time) in
        let precopy_time =
          Sim.Time.scale (Sim.Rng.jitter rng 0.02) plan.Migration.Precopy.precopy_time
        in
        {
          vm_name = n;
          rounds = List.length plan.Migration.Precopy.rounds;
          precopy_time;
          downtime;
          queue_wait;
          total_time = Sim.Time.sum [ setup_time; precopy_time; downtime ];
          wire_bytes = plan.Migration.Precopy.total_bytes + state_bytes;
          state_bytes;
          fixups;
          outcome = Completed;
        })
      plans
  in
  let total_time =
    List.fold_left
      (fun acc (r : vm_report) -> Sim.Time.max acc r.total_time)
      Sim.Time.zero per_vm
  in
  {
    kind;
    src_hv = S.name;
    dst_hv = D.name;
    per_vm;
    total_time;
    checks =
      {
        memory_equal = !checks_memory;
        connections_preserved = !checks_conns;
        management_consistent = Hv.Host.management_consistent dst;
      };
  }

let pp_report fmt r =
  let kind =
    match r.kind with
    | `Migration_tp -> "MigrationTP"
    | `Homogeneous -> "homogeneous migration"
  in
  Format.fprintf fmt "@[<v>%s %s -> %s: total %a@," kind r.src_hv r.dst_hv
    Sim.Time.pp r.total_time;
  List.iter
    (fun v ->
      Format.fprintf fmt
        "  %s: %d rounds, precopy %a, downtime %a (wait %a), %a on wire@,"
        v.vm_name v.rounds Sim.Time.pp v.precopy_time Sim.Time.pp v.downtime
        Sim.Time.pp v.queue_wait Hw.Units.pp_bytes v.wire_bytes)
    r.per_vm;
  Format.fprintf fmt "  checks: memory=%b conns=%b mgmt=%b@]"
    r.checks.memory_equal r.checks.connections_preserved
    r.checks.management_consistent
