bench/bench_util.ml: Format Hv Hw Hypertp List Sim Vmstate
