(** Seeded corruption mutators over encoded UISR blobs.

    Five deterministic mutation families, from raw bit-rot to
    checksum-preserving semantic damage.  All randomness comes from the
    caller's {!Sim.Rng} stream, so a campaign replays bit-for-bit from
    its seed. *)

type kind =
  | Bit_flip  (** flip one random bit anywhere in the blob *)
  | Truncate  (** keep a random strict prefix *)
  | Duplicate_section
      (** append a copy of a random section, outer CRC re-framed *)
  | Length_lie
      (** a section claims more payload than exists, outer CRC
          re-framed *)
  | Semantic
      (** decode, violate a semantic invariant (duplicate vCPU,
          reserved MTRR type, overlapping memory map), re-encode: every
          CRC passes *)

val kinds : kind list
val kind_name : kind -> string

val apply : Sim.Rng.t -> kind -> bytes -> bytes option
(** [apply rng kind blob] is a mutated copy guaranteed to differ from
    [blob], or [None] when the mutation is inapplicable (e.g. semantic
    mutation of an undecodable blob).  [blob] is never modified. *)
