test/test_bhyve.ml: Alcotest Bhyvehv Bytes Cve Format Hashtbl Hv Hw Hypertp Kvmhv List Option Result Sim Uisr Vmstate Xenhv
