type site =
  | Pram_build
  | Uisr_encode
  | Uisr_decode
  | Uisr_corrupt
  | Pram_corrupt
  | Kexec_load
  | Kexec_jump
  | Vm_restore
  | Mgmt_rebuild
  | Residual_leak
  | Scrub_fail
  | Migration_link_drop
  | Migration_link_degrade
  | Shadow_stage_fail
  | Shadow_stream_drop
  | Shadow_diverge
  | Swap_partition
  | Spare_exhausted
  | Host_crash
  | Host_timeout
  | Host_flap
  | Controller_crash
  | Subctl_crash
  | Root_crash
  | Ctl_partition
  | Crash_during_resume
  | Cve_burst
  | Campaign_preempt

let all_sites =
  [ Pram_build; Uisr_encode; Uisr_decode; Uisr_corrupt; Pram_corrupt;
    Kexec_load; Kexec_jump; Vm_restore;
    Mgmt_rebuild; Residual_leak; Scrub_fail;
    Migration_link_drop; Migration_link_degrade;
    Shadow_stage_fail; Shadow_stream_drop; Shadow_diverge; Swap_partition;
    Spare_exhausted; Host_crash;
    Host_timeout; Host_flap; Controller_crash; Subctl_crash; Root_crash;
    Ctl_partition; Crash_during_resume; Cve_burst; Campaign_preempt ]

let engine_sites =
  [ Pram_build; Uisr_encode; Uisr_decode; Uisr_corrupt; Pram_corrupt;
    Kexec_load; Kexec_jump; Vm_restore;
    Mgmt_rebuild; Residual_leak; Scrub_fail;
    Migration_link_drop; Migration_link_degrade; Host_crash ]

let shadow_sites =
  [ Shadow_stage_fail; Shadow_stream_drop; Shadow_diverge; Swap_partition;
    Spare_exhausted ]

let cluster_sites = [ Host_crash; Host_timeout; Host_flap; Controller_crash ]

let controlplane_sites =
  [ Subctl_crash; Root_crash; Ctl_partition; Crash_during_resume ]

let stream_sites = [ Cve_burst; Campaign_preempt ]

let site_to_string = function
  | Pram_build -> "pram_build"
  | Uisr_encode -> "uisr_encode"
  | Uisr_decode -> "uisr_decode"
  | Uisr_corrupt -> "uisr_corrupt"
  | Pram_corrupt -> "pram_corrupt"
  | Kexec_load -> "kexec_load"
  | Kexec_jump -> "kexec_jump"
  | Vm_restore -> "vm_restore"
  | Mgmt_rebuild -> "mgmt_rebuild"
  | Residual_leak -> "residual_leak"
  | Scrub_fail -> "scrub_fail"
  | Migration_link_drop -> "migration_link_drop"
  | Migration_link_degrade -> "migration_link_degrade"
  | Shadow_stage_fail -> "shadow_stage_fail"
  | Shadow_stream_drop -> "shadow_stream_drop"
  | Shadow_diverge -> "shadow_diverge"
  | Swap_partition -> "swap_partition"
  | Spare_exhausted -> "spare_exhausted"
  | Host_crash -> "host_crash"
  | Host_timeout -> "host_timeout"
  | Host_flap -> "host_flap"
  | Controller_crash -> "controller_crash"
  | Subctl_crash -> "subctl_crash"
  | Root_crash -> "root_crash"
  | Ctl_partition -> "ctl_partition"
  | Crash_during_resume -> "crash_during_resume"
  | Cve_burst -> "cve_burst"
  | Campaign_preempt -> "campaign_preempt"

let site_of_string s =
  List.find_opt (fun site -> String.equal (site_to_string site) s) all_sites

let pp_site fmt s = Format.pp_print_string fmt (site_to_string s)

let pre_pnr = function
  | Pram_build | Uisr_encode | Kexec_load -> true
  | Uisr_decode | Uisr_corrupt | Pram_corrupt | Kexec_jump | Vm_restore
  | Mgmt_rebuild | Residual_leak | Scrub_fail
  | Migration_link_drop | Migration_link_degrade
  | Shadow_stage_fail | Shadow_stream_drop | Shadow_diverge | Swap_partition
  | Spare_exhausted | Host_crash
  | Host_timeout | Host_flap | Controller_crash | Subctl_crash | Root_crash
  | Ctl_partition | Crash_during_resume | Cve_burst | Campaign_preempt ->
    false

(* Every shadow-protocol site fires strictly before the identity swap:
   aborting there must leave the source untouched and running. *)
let shadow_pre_swap = function
  | Shadow_stage_fail | Shadow_stream_drop | Shadow_diverge | Swap_partition
  | Spare_exhausted ->
    true
  | Pram_build | Uisr_encode | Uisr_decode | Uisr_corrupt | Pram_corrupt
  | Kexec_load | Kexec_jump | Vm_restore | Mgmt_rebuild | Residual_leak
  | Scrub_fail | Migration_link_drop | Migration_link_degrade | Host_crash
  | Host_timeout | Host_flap | Controller_crash | Subctl_crash | Root_crash
  | Ctl_partition | Crash_during_resume | Cve_burst | Campaign_preempt ->
    false

type trigger =
  | Nth_hit of int
  | On_vm of string
  | Probability of float

type injection = { site : site; trigger : trigger }

let pp_injection fmt { site; trigger } =
  match trigger with
  | Nth_hit n -> Format.fprintf fmt "%a:%d" pp_site site n
  | On_vm vm -> Format.fprintf fmt "%a:vm=%s" pp_site site vm
  | Probability p -> Format.fprintf fmt "%a:p=%g" pp_site site p

type event = {
  ev_site : site;
  ev_vm : string option;
  ev_hit : int;
  ev_fired : bool;
}

type t = {
  plan_injections : injection list;
  plan_seed : int64;
  rng : Sim.Rng.t;
  counters : (site, int) Hashtbl.t;
  mutable events : event list; (* reverse chronological *)
  mutable n_events : int; (* O(1) [List.length events] *)
  mutable fired : int;
}

let default_seed = 0xFA17L

let validate { site; trigger } =
  match trigger with
  | Nth_hit n when n <= 0 ->
    Hypertp_error.raise_errorf ~site:"Fault.make"
      ~hint:"Nth_hit counts hits starting at 1" "%s: Nth_hit must be positive"
      (site_to_string site)
  | Probability p when not (p >= 0.0 && p <= 1.0) ->
    Hypertp_error.raise_errorf ~site:"Fault.make"
      ~hint:"use a probability in [0, 1], e.g. p=0.25"
      "%s: probability outside [0, 1]" (site_to_string site)
  | Nth_hit _ | On_vm _ | Probability _ -> ()

let make ?(seed = default_seed) injections =
  List.iter validate injections;
  {
    plan_injections = injections;
    plan_seed = seed;
    rng = Sim.Rng.create seed;
    counters = Hashtbl.create 8;
    events = [];
    n_events = 0;
    fired = 0;
  }

let none () = make []
let restart t = make ~seed:t.plan_seed t.plan_injections
let injections t = t.plan_injections
let seed t = t.plan_seed

let fire t ?vm site =
  let hit = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counters site) in
  Hashtbl.replace t.counters site hit;
  (* Exactly one probability draw per hit of a probability-armed site,
     fired or not, so equal seeds give aligned streams and higher
     probabilities fire on supersets of the same hit sequence. *)
  let armed = List.filter (fun i -> i.site = site) t.plan_injections in
  let draw =
    if List.exists (fun i -> match i.trigger with Probability _ -> true | _ -> false) armed
    then Some (Sim.Rng.float t.rng 1.0)
    else None
  in
  let fired =
    List.exists
      (fun i ->
        match i.trigger with
        | Nth_hit n -> n = hit
        | On_vm name -> (match vm with Some v -> String.equal v name | None -> false)
        | Probability p -> (match draw with Some u -> u < p | None -> false))
      armed
  in
  if fired then t.fired <- t.fired + 1;
  t.events <- { ev_site = site; ev_vm = vm; ev_hit = hit; ev_fired = fired } :: t.events;
  t.n_events <- t.n_events + 1;
  fired

let hits t site = Option.value ~default:0 (Hashtbl.find_opt t.counters site)
let fired_count t = t.fired
let trace t = List.rev t.events
let trace_length t = t.n_events

let pp_trace fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf fmt "%a#%d%s %s@," pp_site e.ev_site e.ev_hit
        (match e.ev_vm with Some v -> "(" ^ v ^ ")" | None -> "")
        (if e.ev_fired then "FIRED" else "pass"))
    (trace t);
  Format.fprintf fmt "@]"

(* --- CLI parsing --- *)

let parse_trigger s =
  match String.index_opt s '=' with
  | None -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok (Nth_hit n)
    | Some _ -> Error "nth-hit trigger must be positive"
    | None -> Error (Printf.sprintf "bad trigger %S (want N | p=F | vm=NAME)" s))
  | Some i -> (
    let key = String.sub s 0 i in
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    match key with
    | "p" -> (
      match float_of_string_opt v with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Probability p)
      | Some _ -> Error "probability outside [0, 1]"
      | None -> Error (Printf.sprintf "bad probability %S" v))
    | "vm" -> if v = "" then Error "empty vm name" else Ok (On_vm v)
    | _ -> Error (Printf.sprintf "unknown trigger key %S (want p= or vm=)" key))

let valid_site_names () = String.concat "|" (List.map site_to_string all_sites)

(* Plain Levenshtein over the short site names; the table is small
   enough that a full matrix per candidate is fine. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if Char.equal a.[i - 1] b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        Stdlib.min
          (Stdlib.min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

let nearest_site s =
  let s = String.lowercase_ascii s in
  fst
    (List.fold_left
       (fun (best, bd) site ->
         let name = site_to_string site in
         let dist = edit_distance s name in
         if dist < bd then (name, dist) else (best, bd))
       ("", Stdlib.max_int) all_sites)

let parse_injection s =
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf "bad fault spec %S (want SITE:TRIGGER with SITE one of %s)"
         s (valid_site_names ()))
  | Some i -> (
    let site_s = String.sub s 0 i in
    let trig_s = String.sub s (i + 1) (String.length s - i - 1) in
    match site_of_string site_s with
    | None ->
      Error
        (Printf.sprintf "unknown site %S (did you mean %S? valid sites: %s)"
           site_s (nearest_site site_s) (valid_site_names ()))
    | Some site -> (
      match parse_trigger trig_s with
      | Ok trigger -> Ok { site; trigger }
      | Error e -> Error e))

type spec = { spec_injection : injection; spec_seed : int64 option }

let parse_spec s =
  let parts = String.split_on_char ',' s in
  let inj_part, opts =
    match parts with [] -> ("", []) | hd :: tl -> (hd, tl)
  in
  let seed =
    List.fold_left
      (fun acc opt ->
        match acc with
        | Error _ -> acc
        | Ok _ -> (
          match String.index_opt opt '=' with
          | Some i when String.sub opt 0 i = "seed" -> (
            let v = String.sub opt (i + 1) (String.length opt - i - 1) in
            match Int64.of_string_opt v with
            | Some n -> Ok (Some n)
            | None -> Error (Printf.sprintf "bad seed %S" v))
          | _ -> Error (Printf.sprintf "unknown option %S (want seed=N)" opt)))
      (Ok None) opts
  in
  match (parse_injection inj_part, seed) with
  | Ok spec_injection, Ok spec_seed -> Ok { spec_injection; spec_seed }
  | Error e, _ | _, Error e -> Error e

let of_specs specs =
  let seed =
    List.fold_left
      (fun acc s -> match s.spec_seed with Some v -> v | None -> acc)
      default_seed specs
  in
  make ~seed (List.map (fun s -> s.spec_injection) specs)
