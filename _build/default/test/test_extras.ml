(* Edge-case and cross-cutting tests accumulated during hardening:
   the xl G1 tool, snapshot/Nova edge cases, planner group sizes,
   engine corner cases. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- xl (G1) --- *)

let xen_host () =
  Hypertp.Api.provision ~seed:1201L ~name:"xl-host" ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Xen
    [
      Vmstate.Vm.config ~name:"alpha" ~vcpus:2 ~ram:(Hw.Units.mib 256) ();
      Vmstate.Vm.config ~name:"beta" ~ram:(Hw.Units.mib 128) ();
    ]

let test_xl_list_and_ops () =
  let host = xen_host () in
  let xl = Xenhv.Xl.attach host in
  let doms = Xenhv.Xl.list xl in
  checki "two domains" 2 (List.length doms);
  (match doms with
  | (_, name, vcpus, mem) :: _ ->
    Alcotest.check Alcotest.string "first name" "alpha" name;
    checki "vcpus" 2 vcpus;
    checki "mem MiB" 256 mem
  | [] -> Alcotest.fail "empty xl list");
  Xenhv.Xl.pause xl "beta";
  checkb "paused" false
    (Vmstate.Vm.is_running (Option.get (Hv.Host.find_vm host "beta")));
  Xenhv.Xl.unpause xl "beta";
  checki "domid lookup" 1 (Xenhv.Xl.domid xl "alpha");
  checkb "info mentions xen" true
    (String.length (Xenhv.Xl.info xl) > 0)

let test_xl_breaks_after_transplant () =
  (* The G1 failure mode of section 4.5.1: a transplant strands every
     hypervisor-specific workflow. *)
  let host = xen_host () in
  let xl = Xenhv.Xl.attach host in
  ignore (Xenhv.Xl.list xl);
  ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm ());
  checkb "xl stranded" true
    (try
       ignore (Xenhv.Xl.list xl);
       false
     with Xenhv.Xl.Not_xen "kvm" -> true);
  (* The G2 path keeps working (after reconnect). *)
  let names =
    Cluster.Libvirt.hypervisor_agnostic
      (fun c ->
        List.map
          (fun d -> d.Cluster.Libvirt.dom_name)
          (Cluster.Libvirt.list_all_domains c))
      host
  in
  checki "libvirt still sees both" 2 (List.length names)

(* --- snapshot edge cases --- *)

let test_snapshot_duplicate_name_rejected () =
  let host = xen_host () in
  let snap = Hypertp.Snapshot.capture host "alpha" in
  checkb "restore onto a host with the name taken" true
    (try
       ignore (Hypertp.Snapshot.restore snap host);
       false
     with Invalid_argument _ -> true)

let test_snapshot_unknown_vm () =
  let host = xen_host () in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Snapshot.capture: no VM named zz") (fun () ->
      ignore (Hypertp.Snapshot.capture host "zz"))

(* --- planner group sizes --- *)

let paper_model ?(inplace_fraction = 0.5) () =
  Cluster.Model.make ~nodes:10 ~vms_per_node:10 ~vm_ram:(Hw.Units.gib 4)
    ~node_ram:(Hw.Units.gib 96) ~inplace_fraction
    ~workload_mix:[ (Vmstate.Vm.Wl_idle, 1.0) ] ()

let test_plan_group_sizes () =
  List.iter
    (fun group_size ->
      let m = paper_model () in
      let plan = Cluster.Btrplace.plan_upgrade ~group_size m in
      checkb "capacity safe" true (Cluster.Btrplace.capacity_safe m);
      checki "all vms placed" 100 (Cluster.Model.total_vms m);
      checkb "work done" true (plan.Cluster.Btrplace.migration_count > 0);
      List.iter
        (fun n -> checkb "upgraded" true n.Cluster.Model.upgraded)
        m.Cluster.Model.nodes)
    [ 1; 2 ];
  (* Taking half the cluster offline at once cannot place the evictions:
     the planner must refuse rather than overload the survivors. *)
  checkb "oversized group refused" true
    (try
       ignore (Cluster.Btrplace.plan_upgrade ~group_size:5 (paper_model ()));
       false
     with Cluster.Btrplace.No_capacity _ -> true)

(* --- Nova boot onto explicit host --- *)

let test_nova_boot_explicit_host () =
  let h0 =
    Hypertp.Api.provision ~seed:1301L ~name:"e0" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm []
  in
  let h1 =
    Hypertp.Api.provision ~seed:1302L ~name:"e1" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm []
  in
  let nova = Cluster.Nova.create () in
  Cluster.Nova.add_host nova h0;
  Cluster.Nova.add_host nova h1;
  let placed =
    Cluster.Nova.boot_instance nova ~host:"e1"
      (Vmstate.Vm.config ~name:"pinned" ~ram:(Hw.Units.mib 128) ())
  in
  Alcotest.check Alcotest.string "pinned placement honoured" "e1" placed;
  checkb "db consistent" true (Cluster.Nova.db_consistent nova);
  checkb "really there" true (Hv.Host.find_vm h1 "pinned" <> None)

(* --- engine corner cases --- *)

let test_engine_empty_run_until () =
  let e = Sim.Engine.create () in
  Sim.Engine.run_until e (Sim.Time.sec 5);
  checki "clock advanced to limit" (Sim.Time.to_ns (Sim.Time.sec 5))
    (Sim.Time.to_ns (Sim.Engine.now e));
  Sim.Engine.run e (* no-op on empty queue *)

let test_engine_schedule_at_now () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  Sim.Engine.schedule_at e (Sim.Time.ms 5) (fun () ->
      (* Scheduling at exactly `now` from inside a handler is legal. *)
      Sim.Engine.schedule_at e (Sim.Engine.now e) (fun () -> incr hits));
  Sim.Engine.run e;
  checki "same-time event ran" 1 !hits

(* --- xenstore root listing --- *)

let test_xenstore_root () =
  let xs = Xenhv.Xenstore.create () in
  Xenhv.Xenstore.write xs "/a/b" "1";
  Xenhv.Xenstore.write xs "/c" "2";
  Alcotest.check (Alcotest.list Alcotest.string) "root children" [ "a"; "c" ]
    (Xenhv.Xenstore.list xs "/")

(* --- kexec double load / interleaving --- *)

let test_kexec_two_images_coexist () =
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let a = Kexec.load ~pmem ~kernel:"kvm" ~size:(Hw.Units.mib 2) ~cmdline:"" in
  let b = Kexec.load ~pmem ~kernel:"xen" ~size:(Hw.Units.mib 2) ~cmdline:"" in
  (* Executing a's jump must not clobber b's staged image (both are
     reserved). *)
  let report = Kexec.execute ~pmem a ~preserve:(fun _ -> false) in
  checkb "a intact" true report.Kexec.image_intact;
  let report_b = Kexec.execute ~pmem b ~preserve:(fun _ -> false) in
  checkb "b intact" true report_b.Kexec.image_intact;
  Kexec.unload ~pmem a;
  Kexec.unload ~pmem b

(* --- memsep consistency across hypervisors --- *)

let test_memsep_all_hypervisors () =
  List.iter
    (fun hv ->
      let host =
        Hypertp.Api.provision
          ~seed:(Int64.of_int (1400 + Hashtbl.hash hv))
          ~name:"ms" ~machine:(Hw.Machine.m1 ()) ~hv
          [ Vmstate.Vm.config ~name:"v" ~ram:(Hw.Units.mib 512) () ]
      in
      let r = Hypertp.Memsep.of_host host in
      checkb "guest dominates under every hypervisor" true
        (r.Hypertp.Memsep.guest_state_bytes > r.Hypertp.Memsep.vmi_state_bytes);
      checkb "fraction small" true (Hypertp.Memsep.translated_fraction r < 0.05))
    Hv.Kind.all

let suites =
  [
    ( "extras.xl_g1",
      [
        Alcotest.test_case "xl list/pause/info" `Quick test_xl_list_and_ops;
        Alcotest.test_case "xl breaks after transplant, libvirt survives" `Quick
          test_xl_breaks_after_transplant;
      ] );
    ( "extras.edge_cases",
      [
        Alcotest.test_case "snapshot duplicate name" `Quick
          test_snapshot_duplicate_name_rejected;
        Alcotest.test_case "snapshot unknown vm" `Quick test_snapshot_unknown_vm;
        Alcotest.test_case "planner group sizes" `Quick test_plan_group_sizes;
        Alcotest.test_case "nova explicit placement" `Quick
          test_nova_boot_explicit_host;
        Alcotest.test_case "engine empty run_until" `Quick
          test_engine_empty_run_until;
        Alcotest.test_case "engine schedule at now" `Quick
          test_engine_schedule_at_now;
        Alcotest.test_case "xenstore root listing" `Quick test_xenstore_root;
        Alcotest.test_case "kexec staged images coexist" `Quick
          test_kexec_two_images_coexist;
        Alcotest.test_case "memsep across hypervisors" `Quick
          test_memsep_all_hypervisors;
      ] );
  ]
