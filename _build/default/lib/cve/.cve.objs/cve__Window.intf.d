lib/cve/window.mli: Format Nvd
