(* Tests for the region-aware fleet shape (Cluster.Topology) and for
   the sharded fleet campaign built on it (Cluster.Campaign.run_fleet).

   The contract under test is the tentpole invariant of the sharded
   engine: for one topology and config, the Sequential, Rotated and
   Parallel schedules produce byte-identical fleet journals, reports
   and digests — sharding may only trade wall-clock, never results. *)

module T = Cluster.Topology
module C = Cluster.Campaign

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

(* --- constructors and validation --- *)

let test_uniform () =
  let t = T.uniform ~regions:3 ~hosts:10 ~vms_per_host:4 () in
  checki "three regions" 3 (T.n_regions t);
  checki "total hosts" 10 (T.hosts t);
  checki "total vms" 40 (T.vms t);
  let rs = T.regions t in
  checki "remainder to lowest index" 4 rs.(0).T.rg_hosts;
  checki "even tail" 3 rs.(1).T.rg_hosts;
  checks "default names" "r2" rs.(2).T.rg_name;
  checkb "uniform validates" true (Result.is_ok (T.validate t))

let test_flat () =
  let t = T.flat ~hosts:6 ~vms_per_host:2 in
  checki "one region" 1 (T.n_regions t);
  checki "hosts" 6 (T.hosts t);
  checks "name" "r0" (T.regions t).(0).T.rg_name

let test_validate_errors () =
  let bad t = Result.is_error (T.validate t) in
  checkb "no regions" true (bad (T.make []));
  checkb "tiny region" true
    (bad (T.make [ T.region ~name:"a" ~hosts:1 ~vms_per_host:2 () ]));
  checkb "no vms" true
    (bad (T.make [ T.region ~name:"a" ~hosts:4 ~vms_per_host:0 () ]));
  checkb "duplicate names" true
    (bad
       (T.make
          [ T.region ~name:"a" ~hosts:4 ~vms_per_host:2 ();
            T.region ~name:"a" ~hosts:4 ~vms_per_host:2 () ]));
  checkb "reserved characters" true
    (bad (T.make [ T.region ~name:"a b" ~hosts:4 ~vms_per_host:2 () ]));
  checkb "negative spares" true
    (bad (T.make [ T.region ~spares:(-1) ~name:"a" ~hosts:4 ~vms_per_host:2 () ]));
  match T.validate (T.make []) with
  | Error e ->
    let s = Hypertp_error.to_string e in
    checkb "structured site" true
      (String.length s >= 8 && String.sub s 0 8 = "Topology")
  | Ok _ -> Alcotest.fail "empty topology validated"

(* --- spec rendering and parsing --- *)

let test_spec_shorthand () =
  (* Shorthand RxHxV: H is hosts PER REGION. *)
  match T.of_spec "4x50x8" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    checki "regions" 4 (T.n_regions t);
    checki "hosts" 200 (T.hosts t);
    checki "vms" 1600 (T.vms t);
    checks "renders back as shorthand" "4x50x8" (T.spec t)

let test_spec_list () =
  match T.of_spec "edge:4:2;core:8:8:1:3" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    checki "regions" 2 (T.n_regions t);
    let rs = T.regions t in
    checks "first name" "edge" rs.(0).T.rg_name;
    checki "spares parsed" 1 rs.(1).T.rg_spares;
    checkb "wire parsed" true (rs.(1).T.rg_wire_budget = Some 3);
    checks "renders back as list" "edge:4:2;core:8:8:1:3" (T.spec t)

let test_spec_errors () =
  let fails s = Result.is_error (T.of_spec s) in
  checkb "garbage" true (fails "garbage");
  checkb "zero regions" true (fails "0x5x2");
  checkb "tiny region" true (fails "a:1:1");
  checkb "empty" true (fails "");
  checkb "trailing field" true (fails "a:4:2:0:1:9")

let test_spec_roundtrip_qcheck () =
  let region_gen =
    QCheck.Gen.(
      map3
        (fun hosts vms extra -> (hosts, vms, extra))
        (int_range 2 20) (int_range 1 8)
        (opt (pair (int_range 0 3) (opt (int_range 0 5)))))
  in
  let gen =
    QCheck.make
      QCheck.Gen.(
        map
          (fun specs ->
            T.make
              (List.mapi
                 (fun i (hosts, vms, extra) ->
                   let spares, wire_budget =
                     match extra with
                     | None -> (0, None)
                     | Some (s, w) -> (s, w)
                   in
                   T.region ~spares ?wire_budget
                     ~name:(Printf.sprintf "q%d" i)
                     ~hosts ~vms_per_host:vms ())
                 specs))
          (list_size (int_range 1 6) region_gen))
  in
  let prop t =
    match T.of_spec (T.spec t) with
    | Ok t' when t' = t -> true
    | Ok _ -> QCheck.Test.fail_reportf "round-trip changed %s" (T.spec t)
    | Error e -> QCheck.Test.fail_reportf "round-trip failed: %s" e
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"spec round-trip" gen prop)

(* --- Ctx sharding knob --- *)

let test_ctx_sharding () =
  checkb "default is sequential" true
    (Hypertp.Ctx.default.Hypertp.Ctx.sharding = Sim.Shard.Sequential);
  let m = Sim.Shard.Parallel { shards = 8; domains = 2 } in
  let c = Hypertp.Ctx.with_sharding m Hypertp.Ctx.default in
  checkb "with_sharding sets" true (c.Hypertp.Ctx.sharding = m);
  let r = Hypertp.Ctx.resolve ~ctx:c ~sharding:(Sim.Shard.Rotated 3) () in
  checkb "explicit arg wins" true
    (r.Hypertp.Ctx.sharding = Sim.Shard.Rotated 3);
  let r' = Hypertp.Ctx.resolve ~ctx:c () in
  checkb "ctx field survives" true (r'.Hypertp.Ctx.sharding = m)

let test_shard_mode_strings () =
  List.iter
    (fun m ->
      match Sim.Shard.of_string (Sim.Shard.to_string m) with
      | Ok m' -> checkb (Sim.Shard.to_string m) true (m = m')
      | Error e -> Alcotest.fail e)
    [ Sim.Shard.Sequential; Sim.Shard.Rotated 4;
      Sim.Shard.Parallel { shards = 8; domains = 2 } ];
  let fails s = Result.is_error (Sim.Shard.of_string s) in
  checkb "bogus mode" true (fails "bogus");
  checkb "zero rotation" true (fails "rotated:0");
  checkb "zero shards" true (fails "parallel:0x2");
  checkb "bad mode validates" true
    (Result.is_error (Sim.Shard.validate (Sim.Shard.Rotated 0)))

(* --- schedule-independence of the sharded fleet --- *)

let fleet_snap ?fault ~sharding tp cfg =
  let fr = C.run_fleet ?fault ~sharding ~topology:tp cfg in
  ( C.fleet_journals_to_string fr,
    C.fleet_digest fr,
    Format.asprintf "%a" C.pp_fleet fr )

let chaos_plan seed =
  Fault.make ~seed:(Int64.of_int seed)
    [
      { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.25 };
      { Fault.site = Fault.Host_timeout; trigger = Fault.Probability 0.1 };
      { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 40 };
    ]

let check_modes ~msg ?chaos_seed tp cfg modes =
  let snap mode =
    let fault = Option.map chaos_plan chaos_seed in
    fleet_snap ?fault ~sharding:mode tp cfg
  in
  match List.map snap modes with
  | [] -> ()
  | (j0, d0, p0) :: rest ->
    List.iteri
      (fun i (j, d, p) ->
        checks
          (Printf.sprintf "%s: journals (mode %d)" msg (i + 1))
          j0 j;
        checkb (Printf.sprintf "%s: digest (mode %d)" msg (i + 1)) true
          (d0 = d);
        checks (Printf.sprintf "%s: report (mode %d)" msg (i + 1)) p0 p)
      rest

let test_mode_identity_1k () =
  let tp = T.uniform ~regions:4 ~hosts:1_000 ~vms_per_host:8 () in
  check_modes ~msg:"calm 1k" tp C.default_config
    [ Sim.Shard.Sequential; Sim.Shard.Rotated 3;
      Sim.Shard.Parallel { shards = 4; domains = 2 } ];
  (* And under chaos, including controller crashes absorbed by the
     per-region resume loop. *)
  check_modes ~msg:"chaotic 1k" ~chaos_seed:11 tp C.default_config
    [ Sim.Shard.Sequential; Sim.Shard.Parallel { shards = 4; domains = 2 } ]

let test_mode_identity_10k () =
  let tp = T.uniform ~regions:8 ~hosts:10_000 ~vms_per_host:8 () in
  check_modes ~msg:"10k" tp C.default_config
    [ Sim.Shard.Sequential; Sim.Shard.Rotated 5;
      Sim.Shard.Parallel { shards = 8; domains = 4 } ]

let test_mode_identity_qcheck () =
  let gen =
    QCheck.(
      quad (int_range 0 1000) (int_range 1 6) (int_range 1 3)
        (oneofl [ None; Some 7; Some 23 ]))
  in
  let prop (seed, shards, domains, chaos_seed) =
    let tp = T.uniform ~regions:3 ~hosts:60 ~vms_per_host:4 () in
    let cfg = { C.default_config with C.seed = Int64.of_int seed } in
    check_modes ~msg:"qcheck" ?chaos_seed tp cfg
      [ Sim.Shard.Sequential; Sim.Shard.Rotated shards;
        Sim.Shard.Parallel { shards; domains } ];
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:20 ~name:"mode identity" gen prop)

let test_fleet_report_consistency () =
  let tp = T.make
      [ T.region ~name:"edge" ~hosts:30 ~vms_per_host:2 ();
        T.region ~name:"core" ~hosts:20 ~vms_per_host:8 () ]
  in
  let fr = C.run_fleet ~topology:tp C.default_config in
  checki "one summary per region" 2 (Array.length fr.C.f_summaries);
  checki "one journal per region" 2 (Array.length fr.C.f_journals);
  let sum f = Array.fold_left (fun acc s -> acc +. f s) 0.0 fr.C.f_summaries in
  checkb "exposure adds up" true
    (abs_float (fr.C.f_exposed_host_hours -. sum (fun s -> s.C.s_exposed_host_hours))
     < 1e-9);
  checkb "wall clock is the slowest region" true
    (Array.for_all
       (fun s -> Sim.Time.compare s.C.s_wall_clock fr.C.f_wall_clock <= 0)
       fr.C.f_summaries);
  checkb "all hosts accounted" true
    (Array.for_all
       (fun s ->
         s.C.s_inplace + s.C.s_shadow + s.C.s_drained + s.C.s_retried
         + s.C.s_exposed
         = s.C.s_hosts)
       fr.C.f_summaries);
  (* Ragged topologies are exactly what the control plane rejects. *)
  checkb "controlplane rejects ragged" true
    (match
       Cluster.Controlplane.config_of_topology tp
         Cluster.Controlplane.default_config
     with
    | exception Hypertp_error.Error _ -> true
    | _ -> false)

let suites =
  [
    ( "topology.shape",
      [
        Alcotest.test_case "uniform split" `Quick test_uniform;
        Alcotest.test_case "flat" `Quick test_flat;
        Alcotest.test_case "validate errors" `Quick test_validate_errors;
        Alcotest.test_case "spec shorthand" `Quick test_spec_shorthand;
        Alcotest.test_case "spec list form" `Quick test_spec_list;
        Alcotest.test_case "spec errors" `Quick test_spec_errors;
        Alcotest.test_case "spec round-trip (qcheck)" `Quick
          test_spec_roundtrip_qcheck;
      ] );
    ( "topology.sharding",
      [
        Alcotest.test_case "ctx sharding knob" `Quick test_ctx_sharding;
        Alcotest.test_case "mode strings" `Quick test_shard_mode_strings;
        Alcotest.test_case "fleet report consistency" `Quick
          test_fleet_report_consistency;
        Alcotest.test_case "mode identity (qcheck)" `Slow
          test_mode_identity_qcheck;
        Alcotest.test_case "mode identity at 1k hosts" `Slow
          test_mode_identity_1k;
        Alcotest.test_case "mode identity at 10k hosts" `Slow
          test_mode_identity_10k;
      ] );
  ]
