(** The vulnerability dataset behind Table 1.

    A study-faithful reconstruction: per-year critical/medium counts for
    Xen, KVM and their intersection exactly match Table 1; category
    proportions match section 2.1 (PV mechanisms, resource management,
    hardware mishandling, toolstack, QEMU, ioctls); the three real
    common CVEs (VENOM and the two 2015 DoS flaws) and the documented
    timeline anchors (CVE-2016-6258, CVE-2017-12188, CVE-2013-0311)
    appear under their real identifiers.  Synthetic identifiers use a
    9xxx suffix to stay out of the real CVE namespace. *)

type system = Xen_only | Kvm_only | Both

type category =
  | Pv_mechanisms     (** event channels, hypercalls *)
  | Resource_mgmt     (** CPU scheduler, memory accounting *)
  | Hardware_handling (** VT-x state mismanagement *)
  | Toolstack         (** libxl *)
  | Qemu
  | Ioctl

type record = {
  id : string;
  year : int;
  affects : system;
  severity : Cvss.severity;
  category : category;
  vector : Cvss.vector;
  window_days : int option;
      (** discovery-to-patch window where documented (section 2.2) *)
}

val all : record list
(** The Table 1 dataset.  Hardware-level flaws are excluded, as in the
    paper's footnote (their CVEs were declared on CPU products). *)

val hardware_level : record list
(** Spectre/Meltdown-class flaws: they hit the CPU under {e every}
    hypervisor, so transplant cannot escape them — the boundary of the
    HyperTP defence.  Their 7-month coordination window (June 2017 to
    January 2018, section 2.1) is recorded. *)

val is_hardware_level : record -> bool

(** {1 Attack-surface taxonomy}

    The class axis used by the synthetic CVE streams ({!Stream.Gen}),
    following the taxonomies in "Technical Information on
    Vulnerabilities of Hypercall Handlers" and "Breaking Isolation"
    (PAPERS.md): flaws reached through the hypercall/ioctl surface,
    flaws in device emulation, and cross-domain flaws that traverse an
    isolation boundary (toolstack, shared QEMU code affecting several
    hypervisors, hardware-level escapes). *)

type taxonomy = Hypercall_handlers | Device_emulation | Cross_domain

val classify : record -> taxonomy
(** Derived from the record's category and spread: PV mechanisms,
    ioctls and resource management are hypercall-surface flaws; QEMU
    and hardware mishandling are device emulation — except QEMU flaws
    affecting {e both} hypervisors (VENOM-style shared code) and
    hardware-level flaws, which are cross-domain. *)

val taxonomy_to_string : taxonomy -> string
val taxonomy_of_string : string -> taxonomy option
val all_taxonomies : taxonomy list
val pp_taxonomy : Format.formatter -> taxonomy -> unit

(** {1 Timed records}

    A record extended with the service-level facts the campaign stream
    needs: the expected patch-availability delay and the taxonomy
    class. *)

type timed = {
  body : record;
  patch_delay_days : float;
      (** expected days until the patched hypervisor can run in the
          fleet; defaults to the documented window, or the Xen
          reporters' 30-day low estimate when undocumented *)
  tax : taxonomy;
}

val timed : ?patch_delay_days:float -> record -> timed
(** Wrap a record.  Raises [Invalid_argument] on a negative delay. *)

val affects_xen : record -> bool
val affects_kvm : record -> bool

type table1_row = {
  row_year : int;
  xen_crit : int;
  xen_med : int;
  kvm_crit : int;
  kvm_med : int;
  common_crit : int;
  common_med : int;
}

val table1 : unit -> table1_row list
(** Per-year rows, 2013..2019, plus callers can sum for the total row. *)

val total : table1_row list -> table1_row

val category_breakdown :
  xen:bool -> Cvss.severity -> (category * int) list
(** Distribution of categories among (xen|kvm) vulnerabilities of the
    given severity, sorted by count descending. *)

val find : string -> record option

val vector_of : Cvss.severity -> int -> Cvss.vector
(** The [i]-th representative CVSS v2 vector of the severity band
    (wrapping); the synthetic stream generator draws from the same
    pools as the Table 1 reconstruction. *)

val pp_category : Format.formatter -> category -> unit
val pp_record : Format.formatter -> record -> unit
