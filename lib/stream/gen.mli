(** Seeded multi-year synthetic CVE arrival streams.

    One Poisson-ish arrival process per attack-surface class
    ({!Cve.Nvd.taxonomy}), each drawing from its own {!Sim.Rng.split}
    of the seed, merged into one chronological stream and attributed:
    category / affected hypervisor from a per-class wheel that is
    consistent with {!Cve.Nvd.classify} by construction, severity from
    [critical_fraction], CVSS vectors from the Table 1 representative
    pools, and a patch-availability delay drawn from the documented
    vulnerability-window statistics
    ({!Cve.Window.sample_patch_delay}). *)

type config = {
  years : float;  (** stream length in virtual years *)
  rate_per_year : float;  (** total arrivals per year across classes *)
  class_mix : (Cve.Nvd.taxonomy * float) list;
      (** relative class weights; repeated entries accumulate *)
  critical_fraction : float;  (** remainder is medium severity *)
  coordinated_fraction : float;  (** see {!Cve.Window.sample_patch_delay} *)
  base_year : int;  (** identifiers start at [CVE-<base_year>-5000] *)
  seed : int64;
}

val default : config
(** 5 years at 14 disclosures/year (the Table 1 era rate), hypercall
    surface dominating (50/30/20), 45 % critical. *)

type event = {
  seq : int;  (** position in the merged stream, 0-based *)
  day : float;  (** virtual arrival day since stream start *)
  cve : Cve.Nvd.timed;
  subsystems : string list;  (** surface class plus the flawed subsystem *)
}

val generate : ?fault:Fault.t -> config -> event list
(** The full stream, chronological.  [fault] is consulted once per
    merged arrival at {!Fault.Cve_burst}: a firing compresses the next
    few inter-arrival gaps (an audit-wave disclosure burst), pulling
    later events earlier.  Equal seeds and equal plans give
    byte-identical streams.  Raises [Hypertp_error.Error] (site
    ["Stream.Gen"]) on a malformed config. *)

val event_to_string : event -> string
(** One-line stable rendering (the determinism tests pin it). *)

val affects_to_string : Cve.Nvd.system -> string
val severity_to_string : Cve.Cvss.severity -> string
val pp_event : Format.formatter -> event -> unit
