(** Early-boot PRAM parsing.

    After the micro-reboot the target hypervisor receives the PRAM
    pointer on its command line, walks the structure {e sequentially}
    (which is why the Reboot phase grows with guest memory — Fig. 7b/7c),
    verifies every metadata page's sentinel, rebuilds the per-VM file
    table and re-reserves all referenced frames. *)

type parsed_file = {
  name : string;
  size : Hw.Units.bytes_;
  mode : int;
  entries : Entry.t list;
}

type error =
  | Missing_page of Hw.Frame.Mfn.t
  | Clobbered_page of Hw.Frame.Mfn.t
  | Bad_page_kind of { mfn : Hw.Frame.Mfn.t; expected : int; got : int }
  | Page_crc_mismatch of Hw.Frame.Mfn.t
  | Cycle_detected

val pp_error : Format.formatter -> error -> unit

val parse :
  pmem:Hw.Pmem.t -> image:Build.image -> Hw.Frame.Mfn.t ->
  (parsed_file list, error) result
(** [parse ~pmem ~image pointer] walks the structure starting at the
    PRAM pointer, checking each metadata frame's sentinel tag in host
    memory ([Clobbered_page] if the reboot scrubbed it) and its in-page
    CRC32 ([Page_crc_mismatch] on bit-rot; pages stamped 0 — pre-CRC
    builds — are accepted). *)

type file_outcome = File_ok of parsed_file | File_damaged of error

val parse_verified :
  pmem:Hw.Pmem.t -> image:Build.image -> Hw.Frame.Mfn.t ->
  (file_outcome list, error) result
(** Like {!parse}, but damage confined to a single VM's file-info or
    node pages is contained: that VM comes back as [File_damaged] while
    its siblings still parse (and get their frames re-reserved).
    [Error] is reserved for damage to the shared pointer/root pages,
    which loses the whole table. *)

val pages_walked : parsed_file list -> int
(** Metadata pages touched by a sequential walk (cost-model input). *)
