test/test_hypertp.ml: Alcotest Array Bytes Char Cve Float Hashtbl Hv Hw Hypertp Int64 Kvmhv List Option Pram Printf QCheck QCheck_alcotest Result Sim Uisr Vmstate
