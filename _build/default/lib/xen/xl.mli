(** The xl toolstack: Xen's hypervisor-specific administration tool —
    the class-G1 interface of section 4.5.1.

    It exists for completeness and for the contrast the paper's operator
    survey draws: xl only works while Xen runs, so any workflow built on
    it breaks at the first transplant, which is precisely why surveyed
    clouds drive hosts exclusively through generic (G2) libraries and
    why HyperTP does not burden sysadmins. *)

type t

exception Not_xen of string
(** Raised by every operation when the host no longer runs Xen — the
    failure mode that makes G1 tooling transplant-hostile. *)

val attach : Hv.Host.t -> t

val list : t -> (int * string * int * int) list
(** `xl list`: (domid, name, vcpus, memory MiB), sorted by domid. *)

val pause : t -> string -> unit
val unpause : t -> string -> unit

val info : t -> string
(** `xl info`: hypervisor version + host summary. *)

val domid : t -> string -> int
(** Raises [Invalid_argument] for unknown domains. *)
