lib/vmstate/pit.ml: Array Bool Format Sim
