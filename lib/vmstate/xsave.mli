(** Extended processor state (XSAVE area).

    Table 2: Xen's XSAVE record becomes KVM's XCRS + XSAVE ioctl
    payloads. Components are identified by their architectural bit in
    XCR0 (0 = x87, 1 = SSE, 2 = AVX, ...). *)

type component = { id : int; data : int64 array }

type t = {
  xcr0 : int64;       (** enabled feature bits *)
  xstate_bv : int64;  (** components present in the area *)
  components : component list; (** sorted by id *)
}

val component_words : int -> int
(** Architectural payload size, in 64-bit words, of a component id. *)

val generate : Sim.Rng.t -> t
val equal : t -> t -> bool

val size_bytes : t -> int
(** Encoded size of the area (header + component payloads). *)

val pp : Format.formatter -> t -> unit
