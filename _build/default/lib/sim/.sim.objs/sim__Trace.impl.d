lib/sim/trace.ml: Array Format List Stats Time
