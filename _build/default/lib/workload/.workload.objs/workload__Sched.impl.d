lib/workload/sched.ml: Float Format List Profile
