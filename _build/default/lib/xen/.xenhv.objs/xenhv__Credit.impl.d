lib/xen/credit.ml: Array Format Hashtbl List
