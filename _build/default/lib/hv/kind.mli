(** Hypervisor identities.

    The paper's prototype covers Xen and KVM, but the design argument
    (section 3.1) is that operators keep {e several} hypervisors in
    their repertoire so a safe target exists even when two share a flaw;
    the bhyve port exists to demonstrate that adding the (N+1)-th
    hypervisor costs one UISR bridge, not N translators. *)

type t = Xen | Kvm | Bhyve

type hv_type =
  | Type1  (** bare-metal: hypervisor + dom0 kernel boot at reboot *)
  | Type2  (** hosted: one kernel boot at reboot *)

val equal : t -> t -> bool
val all : t list

val other : t -> t
(** The default transplant target in the two-hypervisor Xen/KVM
    repertoire (bhyve falls back to KVM). *)

val to_string : t -> string
val of_string : string -> t option
val platform : t -> Workload.Profile.platform
val pp : Format.formatter -> t -> unit
val pp_hv_type : Format.formatter -> hv_type -> unit
