(** Virtual I/O devices attached to a VM.

    The paper distinguishes pass-through devices (driver state lives in
    guest memory; HyperTP pauses the device and the state survives as
    Guest State) from emulated devices (the VMM holds emulation state
    that must be translated, or — for network devices — the device is
    unplugged before transplant and rescanned after, which keeps TCP
    connections alive; section 4.2.3).

    Emulated devices carry virtio-style queues ({!Virtqueue}): pausing
    quiesces them (in-flight buffers complete), and the ring indices are
    exactly the emulation state that must land unchanged on the target
    hypervisor. *)

type kind =
  | Net_emulated
  | Net_passthrough
  | Blk_emulated
  | Blk_passthrough
  | Serial_console

type run_state = Dev_running | Dev_paused | Dev_unplugged

type t = {
  id : int;
  kind : kind;
  run_state : run_state;
  emulation_state : int64 array;
  (** VMM-side registers; empty for pass-through devices (whose driver
      state lives in guest memory). *)
  queues : Virtqueue.t array;
  (** shared rings: 2 for an emulated NIC (rx/tx), 1 for an emulated
      disk, none otherwise *)
  tcp_connections : int;
  (** Live connections through this device (network kinds only); must
      survive the unplug/rescan cycle. *)
}

val queue_count : kind -> int

val generate : Sim.Rng.t -> id:int -> kind:kind -> ?guest_frames:int -> unit -> t
(** [guest_frames] (default 262144 = 1 GiB) bounds the ring buffers'
    guest addresses. *)

val is_passthrough : t -> bool
val is_network : t -> bool

val in_flight : t -> int
(** Total buffers posted but not completed across this device's queues. *)

val pause : t -> t
(** Guest driver acknowledges quiesce: queues drain ({!Virtqueue.quiesce})
    and the device becomes [Dev_paused] — the consistent state
    section 4.2.3 requires before transplant. *)

val unplug : t -> t
(** Hot-unplug before transplant (network devices; section 4.2.3).
    Emulation state and rings are dropped — they will be rebuilt at
    rescan — but TCP connection tracking (guest-side state) is
    preserved. *)

val rescan : t -> Sim.Rng.t -> t
(** Rediscover an unplugged device under the new hypervisor: fresh
    emulation state and rings, same connections, running again. *)

val resume : t -> t
val equal : t -> t -> bool
val equal_guest_visible : t -> t -> bool
(** Equality on what the guest can observe (kind, connections) —
    the invariant across an unplug/rescan cycle. *)

val pp : Format.formatter -> t -> unit
