lib/kvm/cfs.ml: Float Format Hashtbl Int List Map String
