let kind = Hv.Kind.Bhyve
let name = "bhyve-13.2"
let version = "13.2"
let hv_type = Hv.Kind.Type2
let platform = Workload.Profile.P_bhyve
let ioapic_pins = Vmm_snapshot.ioapic_pins
let kernel_image_bytes = Hw.Units.mib 28 (* FreeBSD kernel + vmm.ko *)
let sequential_migration_receive = false

(* bhyve does not emulate the machine-check architecture: MC bank MSRs
   cannot be restored and are dropped with a recorded fixup. *)
let supports_msr index = not (index >= 0x400 && index < 0x480)

type domain = {
  handle : int; (* /dev/vmm/<name> descriptor *)
  dvm : Vmstate.Vm.t;
  ept : Hv.Npt.t;
  mutable detached : bool;
}

type t = {
  machine : Hw.Machine.t;
  pmem : Hw.Pmem.t;
  mutable doms : domain list;
  rq : Ule.t;
  mutable next_handle : int;
  kernel_heap : (Hw.Frame.Mfn.t * int) list;
  mutable alive : bool;
}

let ept_metadata_factor = 1.05
let heap_frames = Hw.Units.frames_of_bytes (Hw.Units.mib 40)

let boot ~machine ~pmem ~rng:_ =
  let kernel_heap = Hw.Pmem.alloc_extents pmem heap_frames in
  List.iter
    (fun (start, len) ->
      for i = 0 to len - 1 do
        Hw.Pmem.write pmem (Hw.Frame.Mfn.add start i) 0x46524545425344L
      done)
    kernel_heap;
  { machine; pmem; doms = []; rq = Ule.create (); next_handle = 3;
    kernel_heap; alive = true }

(* Type-II boot: one FreeBSD kernel; slower than Linux on big iron
   because device attachment is less parallel. *)
let boot_time ~machine =
  let threads = Hw.Cpu.total_threads machine.Hw.Machine.cpu in
  let gib = Hw.Units.to_gib_f machine.Hw.Machine.ram in
  Sim.Time.of_sec_f
    (1.9 +. (0.014 *. float_of_int threads) +. (0.005 *. gib))

let machine t = t.machine
let pmem t = t.pmem
let check_alive t = if not t.alive then invalid_arg "Bhyve: hypervisor is down"

let shutdown t =
  check_alive t;
  if t.doms <> [] then invalid_arg "Bhyve.shutdown: domains remain";
  List.iter
    (fun (start, len) -> Hw.Pmem.free_extent t.pmem start len)
    t.kernel_heap;
  t.alive <- false

let adopt_vm t (vm : Vmstate.Vm.t) =
  check_alive t;
  let ept =
    Hv.Npt.build ~pmem:t.pmem
      ~guest_frames:(Hw.Units.frames_of_bytes vm.config.ram)
      ~page_kind:vm.config.page_kind ~metadata_factor:ept_metadata_factor
  in
  let dom = { handle = t.next_handle; dvm = vm; ept; detached = false } in
  t.next_handle <- t.next_handle + 1;
  t.doms <- t.doms @ [ dom ];
  Ule.enqueue_vm t.rq ~vm_name:vm.config.name ~vcpus:vm.config.vcpus;
  dom

let create_vm t ~rng config =
  check_alive t;
  let vm = Vmstate.Vm.create ~pmem:t.pmem ~rng ~ioapic_pins config in
  adopt_vm t vm

let free_vmi_state t dom =
  if not dom.detached then begin
    dom.detached <- true;
    Hv.Npt.free dom.ept ~pmem:t.pmem;
    Ule.dequeue_vm t.rq ~vm_name:dom.dvm.Vmstate.Vm.config.name;
    t.doms <- List.filter (fun d -> d.handle <> dom.handle) t.doms
  end

let detach_vm t dom =
  check_alive t;
  free_vmi_state t dom;
  dom.dvm

let destroy_vm t dom =
  check_alive t;
  free_vmi_state t dom;
  Vmstate.Guest_mem.free dom.dvm.Vmstate.Vm.mem

let domains t = t.doms

let find_domain t vm_name =
  List.find_opt
    (fun d -> String.equal d.dvm.Vmstate.Vm.config.name vm_name)
    t.doms

let vm dom = dom.dvm
let pause _t dom = Vmstate.Vm.pause dom.dvm
let resume _t dom = Vmstate.Vm.resume dom.dvm

let native_context dom =
  Vmm_snapshot.encode
    {
      Vmm_snapshot.vcpus = Array.to_list dom.dvm.Vmstate.Vm.vcpus;
      ioapic = dom.dvm.Vmstate.Vm.ioapic;
      pit = dom.dvm.Vmstate.Vm.pit;
    }

let to_uisr dom =
  if Vmstate.Vm.is_running dom.dvm then
    invalid_arg "Bhyve.to_uisr: VM must be paused";
  let plat =
    match Vmm_snapshot.decode (native_context dom) with
    | Ok p -> p
    | Error e ->
      invalid_arg
        (Format.asprintf "Bhyve.to_uisr: snapshot: %a" Vmm_snapshot.pp_error e)
  in
  let base = Uisr.Vm_state.of_vm ~source_hypervisor:name dom.dvm in
  { base with vcpus = plat.Vmm_snapshot.vcpus;
    ioapic = plat.Vmm_snapshot.ioapic; pit = plat.Vmm_snapshot.pit }


let from_uisr t ~rng ~mem (uisr : Uisr.Vm_state.t) =
  check_alive t;
  let fixups = ref [] in
  if not (String.equal uisr.source_hypervisor name) then
    fixups := Uisr.Fixup.Lapic_container_changed :: !fixups;
  let pins = Vmstate.Ioapic.pin_count uisr.ioapic in
  let ioapic =
    if pins > ioapic_pins then begin
      let truncated, dropped_connected =
        Vmstate.Ioapic.truncate uisr.ioapic ~pins:ioapic_pins
      in
      fixups :=
        Uisr.Fixup.Ioapic_pins_dropped { kept = ioapic_pins; dropped_connected }
        :: !fixups;
      truncated
    end
    else if pins < ioapic_pins then begin
      fixups :=
        Uisr.Fixup.Ioapic_pins_extended { from_pins = pins; to_pins = ioapic_pins }
        :: !fixups;
      Vmstate.Ioapic.extend uisr.ioapic ~pins:ioapic_pins
    end
    else uisr.ioapic
  in
  let vcpus = List.map (Hv.Restore.filter_msrs ~supports_msr fixups) uisr.vcpus in
  let devices = Hv.Restore.devices_of_snapshots ~rng fixups uisr.devices in
  let config = Hv.Restore.config_of_uisr ~devices uisr in
  let vm : Vmstate.Vm.t =
    {
      config;
      vcpus = Array.of_list vcpus;
      ioapic;
      pit = uisr.pit;
      devices = Array.of_list devices;
      mem;
      run_state = Vmstate.Vm.Paused;
    }
  in
  (adopt_vm t vm, List.rev !fixups)

let vmi_state_bytes _t dom =
  Hv.Npt.bytes dom.ept
  + (Array.length dom.dvm.Vmstate.Vm.vcpus * 4096)
  + Bytes.length (native_context dom)

let management_state_bytes t =
  Ule.state_bytes t.rq + (List.length t.doms * 16_384) (* bhyve processes *)

let hv_state_bytes _t = heap_frames * 4096

let rebuild_management_state t =
  check_alive t;
  Ule.rebuild t.rq
    (List.map
       (fun d ->
         (d.dvm.Vmstate.Vm.config.name, Array.length d.dvm.Vmstate.Vm.vcpus))
       t.doms);
  let per_dom = 0.003 *. t.machine.Hw.Machine.costs.Hw.Machine.mgmt_factor in
  Sim.Time.of_sec_f (0.006 +. (per_dom *. float_of_int (List.length t.doms)))

let management_state_consistent t =
  Ule.consistent t.rq
    (List.map
       (fun d ->
         (d.dvm.Vmstate.Vm.config.name, Array.length d.dvm.Vmstate.Vm.vcpus))
       t.doms)

let cost_factor t =
  t.machine.Hw.Machine.costs.Hw.Machine.cpu_factor
  *. t.machine.Hw.Machine.costs.Hw.Machine.mgmt_factor

let save_cost t dom =
  let vcpus = float_of_int (Array.length dom.dvm.Vmstate.Vm.vcpus) in
  let gib = Hw.Units.to_gib_f dom.dvm.Vmstate.Vm.config.ram in
  Sim.Time.of_sec_f
    ((0.035 +. (0.007 *. vcpus) +. (0.009 *. gib)) *. cost_factor t)

let restore_cost t dom =
  let vcpus = float_of_int (Array.length dom.dvm.Vmstate.Vm.vcpus) in
  let gib = Hw.Units.to_gib_f dom.dvm.Vmstate.Vm.config.ram in
  Sim.Time.of_sec_f
    ((0.075 +. (0.011 *. vcpus) +. (0.020 *. gib)) *. cost_factor t)

let migration_resume_cost ~machine ~vcpus =
  let f = machine.Hw.Machine.costs.Hw.Machine.mgmt_factor in
  Sim.Time.of_sec_f ((0.008 +. (0.0004 *. float_of_int vcpus)) *. f)

let vm_handle dom = dom.handle
let run_queue t = t.rq
