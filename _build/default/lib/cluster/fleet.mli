(** Fleet-level vulnerability-window simulation (Fig. 1).

    Plays the paper's timeline on the discrete-event engine: a critical
    flaw is disclosed at t0, the patched hypervisor only lands at
    t_patch, and the fleet is {e exposed} in between — unless HyperTP
    transplants every host onto a safe hypervisor shortly after
    disclosure and back once the patch ships.  The simulation measures
    exposure host-hours with and without transplant. *)

type event =
  | Disclosed of string        (** CVE id *)
  | Host_transplanted of { host : string; to_hv : string; downtime : Sim.Time.t }
  | Patch_released
  | Host_patched of { host : string; downtime : Sim.Time.t }

type outcome = {
  events : (Sim.Time.t * event) list;   (** in time order *)
  exposed_host_hours : float;
      (** host-hours spent running a vulnerable hypervisor after
          disclosure *)
  baseline_exposed_host_hours : float;
      (** the same fleet without HyperTP: exposed for the entire window *)
  total_vm_downtime : Sim.Time.t;
      (** summed per-VM downtime caused by the transplants *)
  transplants : int;
}

val simulate :
  ?hosts:int -> ?vms_per_host:int -> ?window_days:int ->
  ?stagger:Sim.Time.t -> cve_id:string -> unit -> outcome
(** Run the scenario for a Xen fleet hit by [cve_id] (defaults: 8 hosts
    x 4 VMs, the CVE's documented window or 30 days, one host
    transplanted every [stagger] = 10 minutes — operators roll changes
    gradually).  Raises [Invalid_argument] for an unknown CVE or one
    the policy would not act on. *)

val pp_outcome : Format.formatter -> outcome -> unit
