(** Abstract cluster model for reconfiguration planning (section 5.4).

    Planning works on a lightweight view of the datacenter — nodes with
    capacities and VM placements — because the planner only needs shapes
    and counts; the per-machine mechanics are exercised by the `hypertp`
    machine-scale paths and by the Nova driver on real simulated
    hosts. *)

type vm = {
  vm_name : string;
  ram : Hw.Units.bytes_;
  inplace_compatible : bool;
  workload : Vmstate.Vm.workload_kind;
}

type node = {
  node_name : string;
  ram_capacity : Hw.Units.bytes_;
  mutable placed : vm list;
  mutable placed_count : int;
      (** always [List.length placed]; cached so planners probing
          thousands of candidate nodes stay O(1) per probe.  Mutate
          placements only through {!place}/{!evict}, which keep it (and
          {!used_ram}) in sync. *)
  mutable used_bytes : Hw.Units.bytes_;
      (** always the sum of [placed] RAM — same contract as
          [placed_count] *)
  mutable upgraded : bool;
  mutable online : bool;
}

type t = { nodes : node list }

val make :
  ?seed:int64 -> nodes:int -> vms_per_node:int -> vm_ram:Hw.Units.bytes_ ->
  node_ram:Hw.Units.bytes_ -> inplace_fraction:float ->
  workload_mix:(Vmstate.Vm.workload_kind * float) list -> unit -> t
(** Build the paper's cluster: [nodes] hosts each holding
    [vms_per_node] VMs; [inplace_fraction] of all VMs tolerate a few
    seconds of downtime; workloads are drawn from the mix (fractions
    must sum to 1). *)

val used_ram : node -> Hw.Units.bytes_
val free_ram : node -> Hw.Units.bytes_
val fits : node -> vm -> bool
val place : node -> vm -> unit
val evict : node -> vm -> unit
val find_node : t -> string -> node
val total_vms : t -> int
val pp : Format.formatter -> t -> unit
