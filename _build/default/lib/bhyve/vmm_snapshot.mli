(** bhyve's native VM state container: a flat struct-dump snapshot.

    Unlike Xen's typed record stream and KVM's per-ioctl payloads,
    bhyve's vmm snapshot is one contiguous dump with a fixed field
    order (header, per-vCPU blocks, IOAPIC, atpit) — a third, distinct
    representation for UISR to bridge. *)

type error = Bad_magic | Truncated | Malformed of string

val pp_error : Format.formatter -> error -> unit

val ioapic_pins : int (* 32 *)

type platform = {
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t; (** at most 32 pins *)
  pit : Vmstate.Pit.t;
}

val encode : platform -> bytes
(** Raises [Invalid_argument] if the IOAPIC exceeds 32 pins. *)

val decode : bytes -> (platform, error) result
