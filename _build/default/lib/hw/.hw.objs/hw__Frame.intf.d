lib/hw/frame.mli: Format
