type gprs = {
  rax : int64; rbx : int64; rcx : int64; rdx : int64;
  rsi : int64; rdi : int64; rsp : int64; rbp : int64;
  r8 : int64; r9 : int64; r10 : int64; r11 : int64;
  r12 : int64; r13 : int64; r14 : int64; r15 : int64;
  rip : int64; rflags : int64;
}

type segment = { selector : int; base : int64; limit : int32; attrs : int }

type sregs = {
  cs : segment; ds : segment; es : segment;
  fs : segment; gs : segment; ss : segment;
  tr : segment; ldt : segment;
  cr0 : int64; cr2 : int64; cr3 : int64; cr4 : int64;
  efer : int64;
  apic_base : int64;
}

type msr = { index : int; value : int64 }

type fpu = {
  fcw : int;
  fsw : int;
  ftw : int;
  mxcsr : int32;
  st : int64 array;
  xmm : int64 array;
}

type t = { gprs : gprs; sregs : sregs; msrs : msr list; fpu : fpu }

(* MSR indices a typical long-mode guest carries and a hypervisor saves
   across migration: sysenter/star families, TSC and its deadline timer,
   PAT, SPEC_CTRL, debug controls, machine-check banks, performance
   counters.  Real save lists run to a few dozen entries, which is what
   puts the per-vCPU UISR near the paper's ~4-5 KiB (Fig. 14). *)
let common_msr_indices =
  [ 0x10 (* TSC *); 0x1B (* APIC_BASE shadow *); 0x3A (* FEATURE_CONTROL *);
    0x48 (* SPEC_CTRL *); 0x8B (* ucode rev *); 0xE7; 0xE8 (* [AM]PERF *);
    0x174; 0x175; 0x176 (* SYSENTER *); 0x1A0 (* MISC_ENABLE *);
    0x1D9 (* DEBUGCTL *); 0x277 (* PAT *); 0x345 (* PERF_CAPABILITIES *);
    0x6E0 (* TSC_DEADLINE *);
    0xC0000080 (* EFER shadow *); 0xC0000081; 0xC0000082; 0xC0000083;
    0xC0000084 (* STAR family *); 0xC0000100; 0xC0000101;
    0xC0000102 (* FS/GS/KERNEL_GS base *); 0xC0000103 (* TSC_AUX *);
    (* Machine-check bank control/status pairs. *)
    0x400; 0x401; 0x404; 0x405; 0x408; 0x409; 0x40C; 0x40D;
    (* Architectural performance counters. *)
    0xC1; 0xC2; 0x186; 0x187; 0x38D; 0x38F; 0x390 ]

let generate rng =
  let r () = Sim.Rng.int64 rng in
  let gprs =
    {
      rax = r (); rbx = r (); rcx = r (); rdx = r ();
      rsi = r (); rdi = r (); rsp = r (); rbp = r ();
      r8 = r (); r9 = r (); r10 = r (); r11 = r ();
      r12 = r (); r13 = r (); r14 = r (); r15 = r ();
      rip = Int64.logor 0xFFFF800000000000L (r ());
      rflags = 0x202L;
    }
  in
  let seg selector attrs =
    { selector; base = 0L; limit = 0xFFFFFFFFl; attrs }
  in
  let sregs =
    {
      cs = seg 0x10 0xA09B; ds = seg 0x18 0xC093; es = seg 0x18 0xC093;
      fs = { selector = 0; base = r (); limit = 0xFFFFFFFFl; attrs = 0xC093 };
      gs = { selector = 0; base = r (); limit = 0xFFFFFFFFl; attrs = 0xC093 };
      ss = seg 0x18 0xC093;
      tr = seg 0x40 0x8B; ldt = seg 0 0x82;
      cr0 = 0x80050033L; cr2 = r (); cr3 = Int64.logand (r ()) 0xFFFFF000L;
      cr4 = 0x3606E0L; efer = 0xD01L;
      apic_base = 0xFEE00900L;
    }
  in
  let msrs =
    List.map (fun index -> { index; value = r () }) common_msr_indices
  in
  let fpu =
    {
      fcw = 0x37F; fsw = 0; ftw = 0; mxcsr = 0x1F80l;
      st = Array.init 8 (fun _ -> r ());
      xmm = Array.init 32 (fun _ -> r ());
    }
  in
  { gprs; sregs; msrs; fpu }

let equal_gprs (a : gprs) (b : gprs) = a = b

let equal_segment (a : segment) (b : segment) = a = b

let equal_sregs a b =
  equal_segment a.cs b.cs && equal_segment a.ds b.ds && equal_segment a.es b.es
  && equal_segment a.fs b.fs && equal_segment a.gs b.gs
  && equal_segment a.ss b.ss && equal_segment a.tr b.tr
  && equal_segment a.ldt b.ldt && Int64.equal a.cr0 b.cr0
  && Int64.equal a.cr2 b.cr2 && Int64.equal a.cr3 b.cr3
  && Int64.equal a.cr4 b.cr4 && Int64.equal a.efer b.efer
  && Int64.equal a.apic_base b.apic_base

let equal_fpu a b =
  a.fcw = b.fcw && a.fsw = b.fsw && a.ftw = b.ftw && a.mxcsr = b.mxcsr
  && Array.for_all2 Int64.equal a.st b.st
  && Array.for_all2 Int64.equal a.xmm b.xmm

let equal_msr (a : msr) (b : msr) = a.index = b.index && Int64.equal a.value b.value

let equal a b =
  equal_gprs a.gprs b.gprs && equal_sregs a.sregs b.sregs
  && List.length a.msrs = List.length b.msrs
  && List.for_all2 equal_msr a.msrs b.msrs
  && equal_fpu a.fpu b.fpu

let msr_value t index =
  List.find_map
    (fun (m : msr) -> if m.index = index then Some m.value else None)
    t.msrs

let with_msr t index value =
  let rec insert = function
    | [] -> [ { index; value } ]
    | m :: rest when m.index = index -> { index; value } :: rest
    | m :: rest when m.index > index -> { index; value } :: m :: rest
    | m :: rest -> m :: insert rest
  in
  { t with msrs = insert t.msrs }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>rip=%Lx rsp=%Lx rflags=%Lx cr3=%Lx efer=%Lx msrs=%d@]" t.gprs.rip
    t.gprs.rsp t.gprs.rflags t.sregs.cr3 t.sregs.efer (List.length t.msrs)
