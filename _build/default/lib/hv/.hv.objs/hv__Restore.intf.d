lib/hv/restore.mli: Sim Uisr Vmstate
