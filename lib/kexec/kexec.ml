type image = {
  kernel : string;
  cmdline : string;
  extents : (Hw.Frame.Mfn.t * int) list;
  nframes : int;
  stamp : int64;
}

let stamp_of kernel =
  (* Content tag marking image frames, derived from the kernel name. *)
  let h = Hashtbl.hash kernel in
  Int64.logor 0x4B45584543000000L (Int64.of_int (h land 0xFFFFFF))

let load ~pmem ~kernel ~size ~cmdline =
  if size <= 0 then invalid_arg "Kexec.load: non-positive image size";
  let nframes = Hw.Units.frames_of_bytes size in
  let extents = Hw.Pmem.alloc_extents pmem nframes in
  let stamp = stamp_of kernel in
  List.iter
    (fun (start, len) ->
      for i = 0 to len - 1 do
        Hw.Pmem.write pmem (Hw.Frame.Mfn.add start i) stamp
      done;
      Hw.Pmem.reserve_extent pmem start len)
    extents;
  { kernel; cmdline; extents; nframes; stamp }

let kernel t = t.kernel
let cmdline t = t.cmdline
let image_frames t = t.nframes

let with_pram_pointer t mfn =
  let arg = Printf.sprintf "pram=0x%x" (Hw.Frame.Mfn.to_int mfn) in
  let cmdline = if t.cmdline = "" then arg else t.cmdline ^ " " ^ arg in
  { t with cmdline }

let pram_pointer_of_cmdline cmdline =
  let words = String.split_on_char ' ' cmdline in
  List.find_map
    (fun word ->
      match String.index_opt word '=' with
      | Some i when String.sub word 0 i = "pram" ->
        let v = String.sub word (i + 1) (String.length word - i - 1) in
        (try Some (Hw.Frame.Mfn.of_int (int_of_string v)) with
        | Failure _ | Invalid_argument _ -> None)
      | Some _ | None -> None)
    words

let clobber ~pmem t =
  (* Overwrite the image's first frame with a wrong tag — the stray-DMA
     / buggy-driver scenario the integrity check exists to catch. *)
  match t.extents with
  | [] -> ()
  | (start, _) :: _ -> Hw.Pmem.write pmem start (Int64.lognot t.stamp)

type jump_report = { frames_wiped : int; image_intact : bool }

let execute ~pmem t ~preserve =
  let frames_wiped = Hw.Pmem.reboot_reset pmem ~preserve in
  let image_intact =
    List.for_all
      (fun (start, len) ->
        let ok = ref true in
        for i = 0 to len - 1 do
          match Hw.Pmem.read pmem (Hw.Frame.Mfn.add start i) with
          | Some tag when Int64.equal tag t.stamp -> ()
          | Some _ | None -> ok := false
        done;
        !ok)
      t.extents
  in
  { frames_wiped; image_intact }

let unload ~pmem t =
  List.iter
    (fun (start, len) ->
      Hw.Pmem.unreserve_extent pmem start len;
      Hw.Pmem.free_extent pmem start len)
    t.extents

let pp fmt t =
  Format.fprintf fmt "kexec image %s (%d frames) cmdline=%S" t.kernel
    t.nframes t.cmdline
