lib/xen/grant_table.mli: Hw
