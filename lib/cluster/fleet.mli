(** Fleet-level vulnerability-window simulation (Fig. 1).

    Plays the paper's timeline on the discrete-event engine: a critical
    flaw is disclosed at t0, the patched hypervisor only lands at
    t_patch, and the fleet is {e exposed} in between — unless HyperTP
    transplants every host onto a safe hypervisor shortly after
    disclosure and back once the patch ships.  The simulation measures
    exposure host-hours with and without transplant. *)

type event =
  | Disclosed of string        (** CVE id *)
  | Host_transplanted of { host : string; to_hv : string; downtime : Sim.Time.t }
  | Patch_released
  | Host_patched of { host : string; downtime : Sim.Time.t }

type outcome = {
  events : (Sim.Time.t * event) array;
      (** Every event, returned from a buffer preallocated at
          [2 * hosts + 2] and filled as the engine dispatches.
          Ordering guarantee: nondecreasing timestamps; events with
          equal timestamps appear in scheduling order (disclosure,
          then out-transplants in host order, then patch release, then
          patch-backs in host order). *)
  exposed_host_hours : float;
      (** host-hours spent running a vulnerable hypervisor after
          disclosure *)
  baseline_exposed_host_hours : float;
      (** the same fleet without HyperTP: exposed for the entire window *)
  total_vm_downtime : Sim.Time.t;
      (** summed per-VM downtime caused by the transplants *)
  transplants : int;
}

val simulate :
  ?hosts:int -> ?vms_per_host:int -> ?topology:Topology.t ->
  ?window_days:int -> ?stagger:Sim.Time.t -> cve_id:string -> unit -> outcome
(** Run the scenario for a Xen fleet hit by [cve_id] (defaults: 8 hosts
    x 4 VMs, the CVE's documented window or 30 days, one host
    transplanted every [stagger] = 10 minutes — operators roll changes
    gradually).  A [topology] overrides the flat [hosts]/[vms_per_host]
    integers: the fleet is its regions concatenated in order, each host
    carrying its region's VM density (the topology is validated first).
    Raises [Hypertp.Error.Error] (site ["Fleet.simulate"])
    for an unknown CVE or one the policy would not act on.

    Exposure host-hours are accounted incrementally as each host's
    first transplant fires (the qcheck property in the test suite pins
    this equal to the recomputed integral over the event log). *)

val pp_outcome : Format.formatter -> outcome -> unit
