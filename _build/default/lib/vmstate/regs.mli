(** vCPU register state: general-purpose registers, segment/control
    registers, model-specific registers and the FPU/SSE area.

    These are the "CPU regs" rows of the paper's Table 2: Xen's HVM
    CPU record maps to KVM's REGS/SREGS/MSRS/FPU ioctl payloads. *)

type gprs = {
  rax : int64; rbx : int64; rcx : int64; rdx : int64;
  rsi : int64; rdi : int64; rsp : int64; rbp : int64;
  r8 : int64; r9 : int64; r10 : int64; r11 : int64;
  r12 : int64; r13 : int64; r14 : int64; r15 : int64;
  rip : int64; rflags : int64;
}

type segment = { selector : int; base : int64; limit : int32; attrs : int }

type sregs = {
  cs : segment; ds : segment; es : segment;
  fs : segment; gs : segment; ss : segment;
  tr : segment; ldt : segment;
  cr0 : int64; cr2 : int64; cr3 : int64; cr4 : int64;
  efer : int64;
  apic_base : int64;
}

type msr = { index : int; value : int64 }

type fpu = {
  fcw : int;      (** x87 control word *)
  fsw : int;      (** x87 status word *)
  ftw : int;      (** tag word *)
  mxcsr : int32;
  st : int64 array;   (** 8 x87 registers (low 64 bits) *)
  xmm : int64 array;  (** 16 XMM registers x 2 halves = 32 entries *)
}

type t = { gprs : gprs; sregs : sregs; msrs : msr list; fpu : fpu }

val generate : Sim.Rng.t -> t
(** A plausible long-mode guest register file, deterministic in the RNG
    stream. *)

val equal : t -> t -> bool
val equal_gprs : gprs -> gprs -> bool
val equal_sregs : sregs -> sregs -> bool
val equal_fpu : fpu -> fpu -> bool

val msr_value : t -> int -> int64 option
(** Lookup an MSR by index. *)

val with_msr : t -> int -> int64 -> t
(** Functional MSR update (replace or insert, keeping index order). *)

val pp : Format.formatter -> t -> unit
