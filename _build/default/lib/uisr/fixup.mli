(** Compatibility fixups applied while restoring a UISR into a target
    hypervisor whose virtual platform differs from the source's.

    The paper's example: Xen's 48-pin virtual IOAPIC vs. KVM's 24 pins —
    the prototype disconnects the upper pins during Xen->KVM transplant
    (section 4.2.1).  Fixups are recorded rather than silent so operators
    and tests can audit exactly what changed. *)

type t =
  | Ioapic_pins_dropped of { kept : int; dropped_connected : int }
      (** upper pins disconnected; [dropped_connected] of them were live *)
  | Ioapic_pins_extended of { from_pins : int; to_pins : int }
      (** padded with masked pins (KVM->Xen direction) *)
  | Msr_dropped of int
      (** an MSR the target does not virtualise *)
  | Device_rescanned of int
      (** network device unplugged before transplant, rediscovered after *)
  | Lapic_container_changed
      (** same architectural LAPIC content, different container format
          (Xen record vs. KVM MSRS+regs page) *)

val equal : t -> t -> bool
val is_lossy : t -> bool
(** True when guest-visible state was actually lost (dropped live pins
    or MSRs), false for pure representation changes. *)

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
