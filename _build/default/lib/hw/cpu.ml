type t = {
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  freq_ghz : float;
}

let create ~sockets ~cores_per_socket ~threads_per_core ~freq_ghz =
  if sockets <= 0 || cores_per_socket <= 0 || threads_per_core <= 0 then
    invalid_arg "Cpu.create: non-positive topology";
  if freq_ghz <= 0.0 then invalid_arg "Cpu.create: non-positive frequency";
  { sockets; cores_per_socket; threads_per_core; freq_ghz }

let total_cores t = t.sockets * t.cores_per_socket
let total_threads t = total_cores t * t.threads_per_core
let usable_threads t ~reserved = Stdlib.max 1 (total_threads t - reserved)

let pp fmt t =
  Format.fprintf fmt "%dx(%dc/%dt) %.1fGHz" t.sockets t.cores_per_socket
    (t.cores_per_socket * t.threads_per_core)
    t.freq_ghz
