bench/bench_figures.ml: Bench_util Cluster Format Hv Hw Hypertp Int64 List Pram Printf Sim Vmstate Workload
