(** MySQL + sysbench model (Fig. 12).

    Produces paired latency and QPS timelines under a schedule.  During
    pre-copy migration the paper measures a 252 % latency increase and a
    68 % throughput drop; during InPlaceTP the service is simply gone for
    ~9 s (including network re-initialisation). *)

val timelines :
  rng:Sim.Rng.t -> sched:Sched.t -> duration_s:float ->
  Sim.Trace.t * Sim.Trace.t
(** (latency_ms, qps), one sample per second.  While the VM is stopped
    the QPS sample is 0 and no latency sample is recorded (no request
    completes). *)
