lib/pram/build.ml: Array Bytes Entry Hashtbl Hw Int Int64 Layout List String
