type action =
  | Migrate of { vm : Model.vm; src : string; dst : string }
  | Take_offline of string
  | Upgrade_inplace of { node : string; vms_in_place : int }
  | Bring_online of string

type plan = {
  actions : action array; (* execution order; built once, scanned many times *)
  migration_count : int;
  inplace_vm_count : int;
}

exception No_capacity of string

(* Soft spread constraint: the planner avoids piling more than
   vms_per_node + 2 VMs on one node while a neighbour drains. *)
let soft_cap model =
  let nodes = List.length model.Model.nodes in
  let vms = Model.total_vms model in
  (vms / Stdlib.max 1 nodes) + 2

(* Pick a destination for an evicted VM.  Upgraded nodes are preferred:
   a VM parked on a not-yet-upgraded node would have to move again when
   that node's turn comes (the planner's "keep transplantable VMs
   together" filter of section 4.5.2). *)
let pick_destination model ~cap ~excluding vm =
  let candidates =
    List.filter
      (fun n ->
        n.Model.online
        && (not (List.memq n excluding))
        && Model.fits n vm
        && n.Model.placed_count < cap)
      model.Model.nodes
  in
  let upgraded, pending =
    List.partition (fun n -> n.Model.upgraded) candidates
  in
  let least_loaded pool =
    List.fold_left
      (fun best n ->
        match best with
        | None -> Some n
        | Some b ->
          if n.Model.placed_count < b.Model.placed_count then Some n else best)
      None pool
  in
  match least_loaded upgraded with
  | Some n -> Some n
  | None -> least_loaded pending

let plan_upgrade ?(group_size = 1) model =
  if group_size <= 0 then invalid_arg "Btrplace.plan_upgrade: bad group size";
  let cap = soft_cap model in
  let actions = Sim.Vec.create ~capacity:64 (Take_offline "") in
  let migrations = ref 0 in
  let inplace_vms = ref 0 in
  let emit a = Sim.Vec.push actions a in
  let rec groups = function
    | [] -> []
    | nodes ->
      let rec take k = function
        | [] -> ([], [])
        | rest when k = 0 -> ([], rest)
        | n :: rest ->
          let g, others = take (k - 1) rest in
          (n :: g, others)
      in
      let g, rest = take group_size nodes in
      g :: groups rest
  in
  let migrate_off group node =
    let victims =
      List.filter (fun vm -> not vm.Model.inplace_compatible) node.Model.placed
    in
    List.iter
      (fun vm ->
        match pick_destination model ~cap ~excluding:group vm with
        | None -> raise (No_capacity vm.Model.vm_name)
        | Some dst ->
          Model.evict node vm;
          Model.place dst vm;
          incr migrations;
          emit
            (Migrate
               { vm; src = node.Model.node_name; dst = dst.Model.node_name }))
      victims
  in
  List.iter
    (fun group ->
      (* Offline the group: evacuate incompatible VMs first. *)
      List.iter
        (fun node ->
          emit (Take_offline node.Model.node_name);
          node.Model.online <- false)
        group;
      List.iter (fun node -> migrate_off group node) group;
      (* Upgrade in place: remaining VMs ride through the transplant. *)
      List.iter
        (fun node ->
          let staying = node.Model.placed_count in
          inplace_vms := !inplace_vms + staying;
          emit
            (Upgrade_inplace
               { node = node.Model.node_name; vms_in_place = staying });
          node.Model.upgraded <- true;
          node.Model.online <- true;
          emit (Bring_online node.Model.node_name))
        group)
    (groups model.Model.nodes);
  (* Final rebalance: drain any node above the average until the spread
     is within one VM. *)
  let avg =
    (Model.total_vms model + List.length model.Model.nodes - 1)
    / List.length model.Model.nodes
  in
  let continue_balancing = ref true in
  while !continue_balancing do
    let heaviest =
      List.fold_left
        (fun best n ->
          match best with
          | None -> Some n
          | Some b ->
            if n.Model.placed_count > b.Model.placed_count then Some n else best)
        None model.Model.nodes
    in
    let lightest =
      List.fold_left
        (fun best n ->
          match best with
          | None -> Some n
          | Some b ->
            if n.Model.placed_count < b.Model.placed_count then Some n else best)
        None model.Model.nodes
    in
    match (heaviest, lightest) with
    | Some h, Some l
      when h.Model.placed_count > avg
           && h.Model.placed_count - l.Model.placed_count > 1 -> (
      match h.Model.placed with
      | vm :: _ ->
        Model.evict h vm;
        Model.place l vm;
        incr migrations;
        emit
          (Migrate { vm; src = h.Model.node_name; dst = l.Model.node_name })
      | [] -> continue_balancing := false)
    | _ -> continue_balancing := false
  done;
  {
    actions = Sim.Vec.to_array actions;
    migration_count = !migrations;
    inplace_vm_count = !inplace_vms;
  }

(* --- per-host strategy selection --- *)

type host_strategy = Use_inplace | Use_shadow | Use_migrate | Use_defer

type strategy_choice = {
  sc_node : string;
  sc_strategy : host_strategy;
  sc_wire_bytes : Hw.Units.bytes_;
  sc_vms : int;
}

type strategy_plan = {
  choices : strategy_choice list;
  shadow_lanes : int;
  wire_total : Hw.Units.bytes_;
  n_inplace : int;
  n_shadow : int;
  n_migrate : int;
  n_defer : int;
}

(* Wire-cost factors relative to the RAM actually moved.  The shadow
   stream pays the full checkpoint plus the dirty-page replay rounds
   (~25 % overhead at the paper's workload mix); a classic stop-and-copy
   migration only retransmits what dirties during the single downtime
   window (~10 %). *)
let shadow_wire_factor = 1.25
let migrate_wire_factor = 1.10

let choose_strategies ?(spare_hosts = 0) ?wire_budget model =
  if spare_hosts < 0 then
    invalid_arg "Btrplace.choose_strategies: negative spare_hosts";
  (match wire_budget with
  | Some b when b < 0 ->
    invalid_arg "Btrplace.choose_strategies: negative wire_budget"
  | _ -> ());
  let remaining =
    ref (match wire_budget with Some b -> b | None -> max_int)
  in
  let wire factor bytes = int_of_float (factor *. float_of_int bytes) in
  let choose node =
    let incompatible =
      List.filter
        (fun v -> not v.Model.inplace_compatible)
        node.Model.placed
    in
    let strategy, cost =
      if incompatible = [] then (Use_inplace, 0)
      else begin
        (* Shadow moves the whole placement onto a staged spare for a
           near-zero cutover; classic MigrationTP only evacuates the
           incompatible VMs and lets the rest ride InPlaceTP.  Shadow is
           preferred whenever a spare lane exists and its (larger) wire
           cost still fits; with no lane or no budget headroom the host
           degrades to classic, then to defer. *)
        let shadow_cost = wire shadow_wire_factor (Model.used_ram node) in
        let migrate_cost =
          wire migrate_wire_factor
            (List.fold_left (fun acc v -> acc + v.Model.ram) 0 incompatible)
        in
        if spare_hosts > 0 && shadow_cost <= !remaining then
          (Use_shadow, shadow_cost)
        else if migrate_cost <= !remaining then (Use_migrate, migrate_cost)
        else (Use_defer, 0)
      end
    in
    remaining := !remaining - cost;
    {
      sc_node = node.Model.node_name;
      sc_strategy = strategy;
      sc_wire_bytes = cost;
      sc_vms = node.Model.placed_count;
    }
  in
  let choices = List.map choose model.Model.nodes in
  let count s =
    List.length (List.filter (fun c -> c.sc_strategy = s) choices)
  in
  {
    choices;
    shadow_lanes = spare_hosts;
    wire_total = List.fold_left (fun acc c -> acc + c.sc_wire_bytes) 0 choices;
    n_inplace = count Use_inplace;
    n_shadow = count Use_shadow;
    n_migrate = count Use_migrate;
    n_defer = count Use_defer;
  }

let strategy_to_string = function
  | Use_inplace -> "inplace"
  | Use_shadow -> "shadow"
  | Use_migrate -> "migrate"
  | Use_defer -> "defer"

let pp_host_strategy fmt s = Format.pp_print_string fmt (strategy_to_string s)

let pp_strategy_plan fmt p =
  Format.fprintf fmt
    "strategies: %d inplace, %d shadow, %d migrate, %d deferred (%d spare \
     lane%s, %.2f GiB on the wire)"
    p.n_inplace p.n_shadow p.n_migrate p.n_defer p.shadow_lanes
    (if p.shadow_lanes = 1 then "" else "s")
    (float_of_int p.wire_total /. float_of_int (Hw.Units.gib 1))

let max_concurrent_drains model =
  (* How many hosts may be offline at once such that, in the worst case,
     every offline host's full VM load can be parked on the remaining
     online nodes.  Conservative on both sides: drains are charged their
     whole placement (the fallback path drains even in-place VMs), and
     the k candidate drain nodes are the heaviest-loaded while the spare
     capacity lost to them is the largest free shares. *)
  let n = List.length model.Model.nodes in
  let used_desc = Array.make n 0 and free_desc = Array.make n 0 in
  let total_free = ref 0 in
  List.iteri
    (fun i node ->
      used_desc.(i) <- Model.used_ram node;
      let f = Model.free_ram node in
      free_desc.(i) <- f;
      total_free := !total_free + f)
    model.Model.nodes;
  (* Descending; the intermediate sorted lists used to cost ~6 words a
     node, noticeable when every region shard rebuilds them. *)
  let desc a b = compare b a in
  Array.sort desc used_desc;
  Array.sort desc free_desc;
  let total_free = !total_free in
  (* Running prefix sums: each widening step extends the previous
     demand/lost-spare totals by one node instead of re-summing the
     whole prefix, so the search is O(n) after sorting. *)
  let rec widen k demand lost_spare =
    if k >= n then Stdlib.max 1 (n - 1)
    else begin
      let demand = demand + used_desc.(k - 1) in
      let lost_spare = lost_spare + free_desc.(k - 1) in
      if demand <= total_free - lost_spare then widen (k + 1) demand lost_spare
      else Stdlib.max 1 (k - 1)
    end
  in
  widen 1 0 0

let capacity_safe model =
  List.for_all
    (fun n -> Model.used_ram n <= n.Model.ram_capacity)
    model.Model.nodes

let pp_plan fmt p =
  Format.fprintf fmt "plan: %d actions, %d migrations, %d VMs upgraded in place"
    (Array.length p.actions) p.migration_count p.inplace_vm_count
