(** The host Linux CFS run-queue as seen by KVM vCPU threads.

    KVM's VM Management State: vCPUs are ordinary host threads ordered
    by virtual runtime.  Like Xen's credit queues, this is rebuilt from
    the VM set after transplant, never translated. *)

type thread_ref = { vm_name : string; vcpu_index : int }

type t

val create : unit -> t
val enqueue_vm : t -> vm_name:string -> vcpus:int -> unit
val dequeue_vm : t -> vm_name:string -> unit
val runnable : t -> int

val min_vruntime : t -> float
val pick_next : t -> thread_ref option
(** Leftmost (smallest vruntime) thread; accounts runtime and requeues. *)

val rebuild : t -> (string * int) list -> unit
val consistent : t -> (string * int) list -> bool
val state_bytes : t -> int
val pp : Format.formatter -> t -> unit
