(** Virtual time for the discrete-event simulation.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Using integers keeps event ordering exact and makes the
    simulation fully deterministic; 63-bit native ints give a range of
    about 292 years, far beyond any experiment in the paper. *)

type t = private int
(** A point in (or a span of) virtual time, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. Raises [Invalid_argument] if [n < 0]. *)

val us : int -> t
val ms : int -> t
val sec : int -> t

val of_sec_f : float -> t
(** [of_sec_f s] converts a non-negative float second count, rounding to
    the nearest nanosecond. Raises [Invalid_argument] on negative or
    non-finite input. *)

val to_sec_f : t -> float
val to_ms_f : t -> float
val to_ns : t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]. Raises [Invalid_argument] if [b > a]. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val scale : float -> t -> t
(** [scale k t] multiplies a duration by a non-negative factor. *)

val max : t -> t -> t
val min : t -> t -> t
val sum : t list -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. ["1.700s"], ["4.96ms"], ["133us"]. *)

val to_string : t -> string
