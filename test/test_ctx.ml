(* Tests for the unified run-context API (Hypertp.Ctx) and for the
   incremental exposure accounting the fleet-scale engines rely on.

   The contract under test: every entry point that accepts [?ctx]
   produces byte-identical reports, traces, metrics and journals
   whether its inputs arrive bundled in a Ctx or through the deprecated
   scattered optional arguments. *)

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let small_vm ?(name = "vm0") ?(mib = 256) () =
  Vmstate.Vm.config ~name ~ram:(Hw.Units.mib mib) ()

let xen_host () =
  Hypertp.Api.provision ~name:"h" ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Xen
    [ small_vm (); small_vm ~name:"vm1" () ]

(* --- Ctx construction and resolution --- *)

let test_ctx_builders () =
  let c = Hypertp.Ctx.default in
  checkb "default has no rng" true (c.Hypertp.Ctx.rng = None);
  checkb "default has no fault" true (c.Hypertp.Ctx.fault = None);
  let rng = Sim.Rng.create 7L in
  let c' = Hypertp.Ctx.with_rng rng c in
  checkb "with_rng sets" true (c'.Hypertp.Ctx.rng = Some rng);
  checkb "with_rng leaves options" true
    (c'.Hypertp.Ctx.options == c.Hypertp.Ctx.options);
  (* Explicit optional arguments override the bundled field. *)
  let rng2 = Sim.Rng.create 8L in
  let r = Hypertp.Ctx.resolve ~ctx:c' ~rng:rng2 () in
  checkb "explicit arg wins over ctx" true (r.Hypertp.Ctx.rng = Some rng2);
  let r' = Hypertp.Ctx.resolve ~ctx:c' () in
  checkb "ctx field survives otherwise" true (r'.Hypertp.Ctx.rng = Some rng)

(* --- old-API vs Ctx-API equivalence --- *)

(* A fault plan plus tracer/metrics exercise every Ctx field the
   in-place engine consumes. *)
let inplace_with ~use_ctx () =
  let host = xen_host () in
  let rng = Sim.Rng.create 0xCAFEL in
  let fault =
    Fault.make ~seed:0xF00DL
      [ { Fault.site = Fault.Vm_restore; trigger = Fault.Nth_hit 1 } ]
  in
  let obs = Obs.Tracer.create () in
  let metrics = Obs.Metrics.create () in
  let report =
    if use_ctx then
      let ctx = Hypertp.Ctx.make ~rng ~fault ~obs ~metrics () in
      Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm ()
    else
      Hypertp.Api.transplant_inplace ~rng ~fault ~obs ~metrics ~host
        ~target:Hv.Kind.Kvm ()
  in
  (report, Obs.Export.chrome_trace obs, Obs.Export.open_metrics metrics)

let test_inplace_ctx_equivalence () =
  let r_old, trace_old, metrics_old = inplace_with ~use_ctx:false () in
  let r_ctx, trace_ctx, metrics_ctx = inplace_with ~use_ctx:true () in
  checkb "same outcome" true
    (r_old.Hypertp.Inplace.outcome = r_ctx.Hypertp.Inplace.outcome);
  checkb "same phases" true
    (r_old.Hypertp.Inplace.phases = r_ctx.Hypertp.Inplace.phases);
  checkb "same checks" true
    (r_old.Hypertp.Inplace.checks = r_ctx.Hypertp.Inplace.checks);
  checks "byte-identical chrome trace" trace_old trace_ctx;
  checks "byte-identical open metrics" metrics_old metrics_ctx

let campaign_with ~use_ctx () =
  let cfg =
    { Cluster.Campaign.default_config with Cluster.Campaign.nodes = 12 }
  in
  let fault =
    Fault.make ~seed:0xBEEFL
      [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.3 } ]
  in
  let metrics = Obs.Metrics.create () in
  let result =
    if use_ctx then
      let ctx = Hypertp.Ctx.make ~fault ~metrics () in
      Cluster.Campaign.run ~ctx cfg
    else Cluster.Campaign.run ~fault ~metrics cfg
  in
  match result with
  | Cluster.Campaign.Finished (r, j) ->
    ( Cluster.Campaign.journal_to_string j,
      r.Cluster.Campaign.exposed_host_hours,
      Obs.Export.open_metrics metrics )
  | Cluster.Campaign.Crashed j ->
    (Cluster.Campaign.journal_to_string j, -1.0, Obs.Export.open_metrics metrics)

let test_campaign_ctx_equivalence () =
  let j_old, e_old, m_old = campaign_with ~use_ctx:false () in
  let j_ctx, e_ctx, m_ctx = campaign_with ~use_ctx:true () in
  checks "byte-identical journal" j_old j_ctx;
  checkb "identical exposure" true (e_old = e_ctx);
  checks "byte-identical metrics" m_old m_ctx

let test_respond_mode_equivalence () =
  let run_mode mode =
    let host = xen_host () in
    let r = Hypertp.Api.respond_to_cve ~host ~cve_id:"CVE-2016-6258" ~mode () in
    (r, Hv.Host.hypervisor_kind host)
  in
  let run_legacy apply =
    let host = xen_host () in
    let r =
      Hypertp.Api.respond_to_cve_legacy ~host ~cve_id:"CVE-2016-6258" ~apply ()
    in
    (r, Hv.Host.hypervisor_kind host)
  in
  let r_adv, hv_adv = run_mode `Advise in
  let r_leg_adv, hv_leg_adv = run_legacy false in
  checkb "advise == legacy apply:false (outcome)" true
    (r_adv.Hypertp.Api.outcome = r_leg_adv.Hypertp.Api.outcome);
  checkb "advise == legacy apply:false (host)" true (hv_adv = hv_leg_adv);
  checkb "advise leaves host on xen" true (hv_adv = Some Hv.Kind.Xen);
  let r_app, hv_app = run_mode `Apply in
  let r_leg_app, hv_leg_app = run_legacy true in
  checkb "apply == legacy apply:true (host)" true (hv_app = hv_leg_app);
  checkb "apply transplants" true (hv_app = Some Hv.Kind.Kvm);
  checkb "both applied" true
    (Hypertp.Api.applied_report r_app <> None
    && Hypertp.Api.applied_report r_leg_app <> None)

(* --- incremental exposure accounting == recomputed integral --- *)

(* Fleet: the running sum kept as transplants fire must equal the
   integral recomputed from the event log after the fact. *)
let fleet_integral (o : Cluster.Fleet.outcome) =
  let firsts = Hashtbl.create 16 in
  let disclosed = ref Sim.Time.zero in
  Array.iter
    (fun (t, ev) ->
      match ev with
      | Cluster.Fleet.Disclosed _ -> disclosed := t
      | Cluster.Fleet.Host_transplanted { host; _ } ->
        if not (Hashtbl.mem firsts host) then Hashtbl.add firsts host t
      | Cluster.Fleet.Patch_released | Cluster.Fleet.Host_patched _ -> ())
    o.Cluster.Fleet.events;
  Hashtbl.fold
    (fun _ t acc ->
      acc +. (Sim.Time.to_sec_f (Sim.Time.sub t !disclosed) /. 3600.0))
    firsts 0.0

let test_fleet_incremental_exposure_qcheck () =
  let gen =
    QCheck.(
      pair (int_range 2 12)
        (pair (int_range 1 3) (int_range 30 3600)))
  in
  let prop (hosts, (vms_per_host, stagger_s)) =
    let o =
      Cluster.Fleet.simulate ~hosts ~vms_per_host
        ~stagger:(Sim.Time.sec stagger_s) ~cve_id:"CVE-2016-6258" ()
    in
    let integral = fleet_integral o in
    if Float.abs (integral -. o.Cluster.Fleet.exposed_host_hours) > 1e-6 then
      QCheck.Test.fail_reportf
        "incremental %.9f <> integral %.9f (hosts=%d stagger=%ds)"
        o.Cluster.Fleet.exposed_host_hours integral hosts stagger_s;
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:30 ~name:"fleet incremental exposure" gen prop)

(* Campaign: the accumulator updated on each host completion must equal
   the per-host fold over the final report. *)
let test_campaign_incremental_exposure_qcheck () =
  let gen =
    QCheck.(pair (int_range 2 30) (pair (int_range 1 4) small_int))
  in
  let prop (nodes, (vms_per_node, seed)) =
    (* The int_range shrinker can step below the range; skip those. *)
    QCheck.assume (nodes >= 2 && vms_per_node >= 1 && seed >= 0);
    let cfg =
      {
        Cluster.Campaign.default_config with
        Cluster.Campaign.nodes;
        vms_per_node;
        seed = Int64.of_int seed;
      }
    in
    let fault =
      Fault.make
        ~seed:(Int64.of_int (seed + 1))
        [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.3 } ]
    in
    let r = Cluster.Campaign.run_to_completion ~fault cfg in
    let folded =
      List.fold_left
        (fun acc h -> acc +. h.Cluster.Campaign.hr_exposure_hours)
        0.0 r.Cluster.Campaign.hosts
    in
    if Float.abs (folded -. r.Cluster.Campaign.exposed_host_hours) > 1e-6 then
      QCheck.Test.fail_reportf
        "incremental %.9f <> fold %.9f (nodes=%d seed=%d)"
        r.Cluster.Campaign.exposed_host_hours folded nodes seed;
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25 ~name:"campaign incremental exposure" gen prop)

(* --- fleet-scale determinism --- *)

let test_large_campaign_deterministic () =
  let cfg =
    {
      Cluster.Campaign.default_config with
      Cluster.Campaign.nodes = 1000;
      vms_per_node = 8;
    }
  in
  let snap () =
    match Cluster.Campaign.run cfg with
    | Cluster.Campaign.Finished (r, j) ->
      ( Cluster.Campaign.journal_to_string j,
        r.Cluster.Campaign.exposed_host_hours,
        r.Cluster.Campaign.wall_clock )
    | Cluster.Campaign.Crashed _ -> Alcotest.fail "no fault plan: cannot crash"
  in
  let j1, e1, w1 = snap () in
  let j2, e2, w2 = snap () in
  checks "identical 1k-host journal" j1 j2;
  checkb "identical exposure" true (e1 = e2);
  checkb "identical wall clock" true (w1 = w2)

let suites =
  [
    ( "ctx.api",
      [
        Alcotest.test_case "builders and resolve" `Quick test_ctx_builders;
        Alcotest.test_case "inplace equivalence" `Quick
          test_inplace_ctx_equivalence;
        Alcotest.test_case "campaign equivalence" `Quick
          test_campaign_ctx_equivalence;
        Alcotest.test_case "respond mode equivalence" `Quick
          test_respond_mode_equivalence;
      ] );
    ( "ctx.exposure",
      [
        Alcotest.test_case "fleet incremental (qcheck)" `Slow
          test_fleet_incremental_exposure_qcheck;
        Alcotest.test_case "campaign incremental (qcheck)" `Slow
          test_campaign_incremental_exposure_qcheck;
        Alcotest.test_case "1k-host determinism" `Slow
          test_large_campaign_deterministic;
      ] );
  ]
