lib/xen/xl.mli: Hv
