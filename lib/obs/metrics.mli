(** The metrics registry: named counters, gauges and fixed-bucket
    histograms, labelled by engine / VM / host.

    Instruments are identified by (name, sorted labels); registering the
    same pair twice returns the existing instrument, so call sites can
    re-derive handles freely.  Histograms keep Prometheus-style
    cumulative-compatible fixed buckets (upper-bound inclusive) plus a
    bounded reservoir of raw samples for {!Sim.Stats} summaries; beyond
    the retention cap the buckets, sum and count keep updating while
    sample retention stops, keeping memory bounded. *)

type t

type labels = (string * string) list

type kind = Counter | Gauge | Histogram

type instrument
(** Counters, gauges and histograms share one representation; the
    aliases below are documentation, with runtime guards rejecting
    kind-mismatched operations ([inc] on a gauge, [observe] on a
    counter, ...). *)

type counter = instrument
type gauge = instrument
type histogram = instrument

val create : unit -> t

val counter : t -> ?labels:labels -> ?help:string -> string -> counter
val gauge : t -> ?labels:labels -> ?help:string -> string -> gauge

val histogram :
  t -> ?labels:labels -> ?help:string -> buckets:float list -> string ->
  histogram
(** [buckets] are upper bounds, strictly increasing; an implicit +Inf
    bucket is appended.  Raises [Invalid_argument] on an empty or
    non-increasing list, or if the name is already registered with a
    different kind. *)

val inc : ?by:float -> counter -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

val bucket_index : histogram -> float -> int
(** The index the value lands in: the first bucket whose upper bound is
    [>= v] (boundary values land in the bucket whose bound they equal),
    or [length buckets] for the +Inf overflow bucket. *)

val summary : histogram -> Sim.Stats.summary option
(** {!Sim.Stats} summary over the retained raw samples; [None] before
    the first observation. *)

(** {1 Introspection (exporters, tests)} *)

val value : instrument -> float
val observations : histogram -> int
val sum : histogram -> float
val bucket_bounds : histogram -> float list
val bucket_counts : histogram -> int list
(** Per-bucket (non-cumulative) counts; last entry is the +Inf bucket. *)

val name : instrument -> string
val help : instrument -> string
val instrument_labels : instrument -> labels
val instrument_kind : instrument -> kind

val instruments : t -> instrument list
(** All instruments, sorted by (name, labels) — a deterministic order
    for exporters and golden tests. *)
