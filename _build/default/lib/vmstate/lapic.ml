type t = {
  apic_id : int;
  version : int;
  tpr : int;
  ldr : int32;
  dfr : int32;
  svr : int32;
  isr : int64 array;
  irr : int64 array;
  tmr : int64 array;
  lvt : int32 array;
  timer_dcr : int32;
  timer_icr : int32;
  timer_ccr : int32;
  enabled : bool;
}

let generate rng ~apic_id =
  let r32 () = Int64.to_int32 (Sim.Rng.int64 rng) in
  let bitmap () =
    (* Sparse pending-interrupt bitmaps: a handful of vectors set. *)
    let words = Array.make 4 0L in
    let nbits = Sim.Rng.int rng 4 in
    for _ = 1 to nbits do
      let bit = 32 + Sim.Rng.int rng 200 in
      let word = bit / 64 and off = bit mod 64 in
      words.(word) <- Int64.logor words.(word) (Int64.shift_left 1L off)
    done;
    words
  in
  {
    apic_id;
    version = 0x50014;
    tpr = 0;
    ldr = Int32.shift_left (Int32.of_int apic_id) 24;
    dfr = 0xFFFFFFFFl;
    svr = 0x1FFl;
    isr = bitmap ();
    irr = bitmap ();
    tmr = bitmap ();
    lvt = Array.init 7 (fun _ -> Int32.logand (r32 ()) 0x100FFl);
    timer_dcr = 0xBl;
    timer_icr = Int32.abs (r32 ());
    timer_ccr = Int32.abs (r32 ());
    enabled = true;
  }

let equal a b =
  a.apic_id = b.apic_id && a.version = b.version && a.tpr = b.tpr
  && Int32.equal a.ldr b.ldr && Int32.equal a.dfr b.dfr
  && Int32.equal a.svr b.svr
  && Array.for_all2 Int64.equal a.isr b.isr
  && Array.for_all2 Int64.equal a.irr b.irr
  && Array.for_all2 Int64.equal a.tmr b.tmr
  && Array.for_all2 Int32.equal a.lvt b.lvt
  && Int32.equal a.timer_dcr b.timer_dcr
  && Int32.equal a.timer_icr b.timer_icr
  && Int32.equal a.timer_ccr b.timer_ccr
  && Bool.equal a.enabled b.enabled

let popcount64 x =
  let rec go x acc =
    if Int64.equal x 0L then acc
    else go (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  go x 0

let pending_interrupts t =
  Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.irr

let pp fmt t =
  Format.fprintf fmt "lapic[%d] svr=%lx pending=%d timer_icr=%ld" t.apic_id
    t.svr (pending_interrupts t) t.timer_icr
