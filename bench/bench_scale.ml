(* Fleet-scale campaign benchmark: how the sharded campaign engine
   behaves as the fleet grows from the paper's 10-node cluster to a
   million hosts / 8M VMs.  Each size runs through
   [Cluster.Campaign.run_fleet] over a uniform region topology; points
   report real wall-clock, minor-heap allocation (sampled inside the
   shard tasks, so the per-point numbers survive any schedule),
   journaled events and exposure.

   Determinism is pinned the strong way: the self-check size is run
   under Sequential, Rotated and Parallel schedules and the concatenated
   region journals plus fleet digests must agree byte-for-byte — the
   sharding mode may only trade wall-clock, never results.

   Emits BENCH_scale.json (consumed by the scale-smoke CI job). *)

open Bench_util

let vms_per_host = 8
let default_sizes = [ 100; 1_000; 10_000; 50_000; 1_000_000 ]

(* Region rule: ~250 hosts per region at small sizes, capped at 64
   regions so the million-host fleet is 64 x 15625. *)
let regions_for hosts = Stdlib.max 1 (Stdlib.min 64 (hosts / 250))

let topology hosts =
  Cluster.Topology.uniform ~regions:(regions_for hosts) ~hosts
    ~vms_per_host ()

let config = Cluster.Campaign.default_config

let default_mode hosts =
  let shards = regions_for hosts in
  if shards = 1 then Sim.Shard.Sequential
  else
    Sim.Shard.Parallel
      { shards;
        domains = Stdlib.min 8 (Stdlib.max 1 (Domain.recommended_domain_count ())) }

type point = {
  p_hosts : int;
  p_regions : int;
  p_mode : Sim.Shard.mode;
  p_shards : int;
  p_domains : int;
  p_wall_s : float;  (* real time for one fleet run *)
  p_minor_words : float;  (* minor words allocated inside the shard tasks *)
  p_events : int;  (* journal entries, summed over regions *)
  p_exposed_hh : float;
  p_sim_wall_s : float;  (* simulated fleet wall clock (slowest region) *)
}

let run_once ?mode hosts =
  let tp = topology hosts in
  let mode = match mode with Some m -> m | None -> default_mode hosts in
  let t0 = Unix.gettimeofday () in
  let fr = Cluster.Campaign.run_fleet ~sharding:mode ~topology:tp config in
  let wall = Unix.gettimeofday () -. t0 in
  {
    p_hosts = hosts;
    p_regions = Cluster.Topology.n_regions tp;
    p_mode = mode;
    p_shards = fr.Cluster.Campaign.f_shards;
    p_domains = fr.Cluster.Campaign.f_domains;
    p_wall_s = wall;
    p_minor_words = fr.Cluster.Campaign.f_minor_words;
    p_events =
      Array.fold_left
        (fun acc s -> acc + s.Cluster.Campaign.s_events)
        0 fr.Cluster.Campaign.f_summaries;
    p_exposed_hh = fr.Cluster.Campaign.f_exposed_host_hours;
    p_sim_wall_s = Sim.Time.to_sec_f fr.Cluster.Campaign.f_wall_clock;
  }

(* Same fleet under three schedules => byte-identical journals and
   digests.  This is the tentpole contract; fail loudly if it breaks. *)
let deterministic hosts =
  let tp = topology hosts in
  let regions = Cluster.Topology.n_regions tp in
  let snap mode =
    let fr = Cluster.Campaign.run_fleet ~sharding:mode ~topology:tp config in
    ( Cluster.Campaign.fleet_journals_to_string fr,
      Cluster.Campaign.fleet_digest fr,
      Format.asprintf "%a" Cluster.Campaign.pp_fleet fr )
  in
  let seq = snap Sim.Shard.Sequential in
  let rot = snap (Sim.Shard.Rotated (Stdlib.min 4 regions)) in
  let par =
    snap (Sim.Shard.Parallel { shards = regions; domains = Stdlib.min 4 regions })
  in
  seq = rot && rot = par

let emit points deterministic_checked =
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"scale\",\n  \"vms_per_host\": %d,\n  \
     \"deterministic\": %b,\n  \"points\": [\n"
    vms_per_host deterministic_checked;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"hosts\": %d, \"regions\": %d, \"mode\": \"%s\", \
         \"shards\": %d, \"domains\": %d, \"wall_clock_s\": %.3f, \
         \"minor_words\": %.0f, \"events\": %d, \
         \"exposed_host_hours\": %.4f, \"sim_wall_clock_s\": %.3f}%s\n"
        p.p_hosts p.p_regions
        (Sim.Shard.to_string p.p_mode)
        p.p_shards p.p_domains p.p_wall_s p.p_minor_words p.p_events
        p.p_exposed_hh p.p_sim_wall_s
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_scale.json@."

let run ?(sizes = default_sizes) ?mode () =
  header "Fleet-scale campaign engine (hosts -> wall-clock / allocation)";
  Format.printf "%-9s %-8s %-14s %-10s %-14s %-9s %-12s %s@." "hosts"
    "regions" "mode" "wall(s)" "minor-words" "events" "exposed-hh" "sim-wall";
  let points =
    List.map
      (fun hosts ->
        let p = run_once ?mode hosts in
        Format.printf "%-9d %-8d %-14s %-10.3f %-14.0f %-9d %-12.3f %.1fs@."
          p.p_hosts p.p_regions
          (Sim.Shard.to_string p.p_mode)
          p.p_wall_s p.p_minor_words p.p_events p.p_exposed_hh p.p_sim_wall_s;
        p)
      sizes
  in
  (* Pin schedule-independence at the largest size that is still cheap
     to run three times. *)
  let check_at =
    List.fold_left
      (fun acc h -> if h <= 10_000 then Stdlib.max acc h else acc)
      0 sizes
  in
  let check_determinism = check_at > 0 in
  if check_determinism then begin
    note
      "re-running the %d-host fleet under seq / rotated / parallel \
       schedules...@."
      check_at;
    if not (deterministic check_at) then begin
      Format.eprintf
        "FATAL: %d-host fleet journals differ across sharding modes@."
        check_at;
      exit 1
    end;
    note "byte-identical journals and digests across all three modes@."
  end;
  emit points check_determinism
