(* Fleet-scale campaign benchmark: how the supervised campaign engine
   behaves as the host count grows from the paper's 10-node cluster to
   a 10k-host / 80k-VM fleet.  For each size it reports real wall-clock,
   minor-heap allocation, journaled events and exposure, and pins
   determinism by running the 10k point twice and comparing journals.

   Emits BENCH_scale.json (consumed by the scale-smoke CI job). *)

open Bench_util

let vms_per_host = 8
let default_sizes = [ 100; 1_000; 10_000; 50_000 ]
let determinism_at = 10_000

let config hosts =
  {
    Cluster.Campaign.default_config with
    Cluster.Campaign.nodes = hosts;
    vms_per_node = vms_per_host;
  }

type point = {
  p_hosts : int;
  p_wall_s : float;  (* real time for one campaign run *)
  p_minor_words : float;  (* minor-heap words allocated by that run *)
  p_events : int;  (* journal entries *)
  p_exposed_hh : float;
  p_sim_wall_s : float;  (* simulated campaign wall clock *)
}

let finished = function
  | Cluster.Campaign.Finished (r, j) -> (r, j)
  | Cluster.Campaign.Crashed _ ->
    (* No fault plan is armed, so the controller cannot crash. *)
    assert false

let run_once hosts =
  let cfg = config hosts in
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r, j = finished (Cluster.Campaign.run cfg) in
  let wall = Unix.gettimeofday () -. t0 in
  {
    p_hosts = hosts;
    p_wall_s = wall;
    p_minor_words = Gc.minor_words () -. words0;
    p_events = Cluster.Campaign.journal_length j;
    p_exposed_hh = r.Cluster.Campaign.exposed_host_hours;
    p_sim_wall_s = Sim.Time.to_sec_f r.Cluster.Campaign.wall_clock;
  }

(* Same seed => byte-identical journal and identical report numbers. *)
let deterministic hosts =
  let snap () =
    let r, j = finished (Cluster.Campaign.run (config hosts)) in
    ( Cluster.Campaign.journal_to_string j,
      r.Cluster.Campaign.exposed_host_hours,
      r.Cluster.Campaign.wall_clock )
  in
  snap () = snap ()

let emit points deterministic_checked =
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"scale\",\n  \"vms_per_host\": %d,\n  \
     \"deterministic\": %b,\n  \"points\": [\n"
    vms_per_host deterministic_checked;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"hosts\": %d, \"wall_clock_s\": %.3f, \"minor_words\": %.0f, \
         \"events\": %d, \"exposed_host_hours\": %.4f, \
         \"sim_wall_clock_s\": %.3f}%s\n"
        p.p_hosts p.p_wall_s p.p_minor_words p.p_events p.p_exposed_hh
        p.p_sim_wall_s
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_scale.json@."

let run ?(sizes = default_sizes) () =
  header "Fleet-scale campaign engine (hosts -> wall-clock / allocation)";
  Format.printf "%-8s %-10s %-14s %-9s %-12s %s@." "hosts" "wall(s)"
    "minor-words" "events" "exposed-hh" "sim-wall";
  let points =
    List.map
      (fun hosts ->
        let p = run_once hosts in
        Format.printf "%-8d %-10.3f %-14.0f %-9d %-12.3f %.1fs@." p.p_hosts
          p.p_wall_s p.p_minor_words p.p_events p.p_exposed_hh p.p_sim_wall_s;
        p)
      sizes
  in
  let check_determinism = List.mem determinism_at sizes in
  if check_determinism then begin
    note "re-running the %d-host campaign to pin determinism...@."
      determinism_at;
    if not (deterministic determinism_at) then begin
      Format.eprintf "FATAL: %d-host campaign is not deterministic@."
        determinism_at;
      exit 1
    end;
    note "identical journal and report across runs@."
  end;
  emit points check_determinism
