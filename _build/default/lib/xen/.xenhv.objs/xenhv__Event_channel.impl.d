lib/xen/event_channel.ml: Hashtbl Int List Option Printf
