type stats = {
  cases : int;
  applied : int;
  skipped : int;
  raised : int;
  intact_accepted : int;
  salvaged : int;
  rejected : int;
  pristine_intact : bool;
  by_kind : (Corrupt.kind * int) list;
}

let ok s =
  s.pristine_intact && s.raised = 0 && s.intact_accepted = 0 && s.applied > 0

let pool_size = 4

let run ?(vcpus = 2) ?(ram_mib = 64) ~seed ~cases () =
  if cases <= 0 then invalid_arg "Fuzz.run: cases must be positive";
  let rng = Sim.Rng.create seed in
  let pool =
    Array.init pool_size (fun i ->
        Gen.blob ~vcpus ~ram_mib ~seed:(Int64.add seed (Int64.of_int i)) ())
  in
  let pristine_intact =
    Array.for_all
      (fun blob ->
        match (Uisr.Codec.decode_verified blob).Uisr.Integrity.verdict with
        | Uisr.Integrity.Intact -> true
        | Uisr.Integrity.Salvaged _ | Uisr.Integrity.Rejected _ -> false)
      pool
  in
  let applied = ref 0 and skipped = ref 0 in
  let raised = ref 0 and intact_accepted = ref 0 in
  let salvaged = ref 0 and rejected = ref 0 in
  let by_kind = Hashtbl.create 8 in
  for _ = 1 to cases do
    let blob = pool.(Sim.Rng.int rng pool_size) in
    let kind = List.nth Corrupt.kinds (Sim.Rng.int rng (List.length Corrupt.kinds)) in
    match Corrupt.apply rng kind blob with
    | None -> incr skipped
    | Some mutated -> (
      incr applied;
      Hashtbl.replace by_kind kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind kind));
      match Uisr.Codec.decode_verified mutated with
      | exception _ -> incr raised
      | report -> (
        match report.Uisr.Integrity.verdict with
        | Uisr.Integrity.Intact -> incr intact_accepted
        | Uisr.Integrity.Salvaged _ -> incr salvaged
        | Uisr.Integrity.Rejected _ -> incr rejected))
  done;
  {
    cases;
    applied = !applied;
    skipped = !skipped;
    raised = !raised;
    intact_accepted = !intact_accepted;
    salvaged = !salvaged;
    rejected = !rejected;
    pristine_intact;
    by_kind =
      List.filter_map
        (fun k ->
          match Hashtbl.find_opt by_kind k with
          | Some n -> Some (k, n)
          | None -> None)
        Corrupt.kinds;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d cases: %d applied, %d inapplicable@,\
     verdicts: %d salvaged, %d rejected@,\
     violations: %d raised, %d mutants accepted as intact, pristine %s@,\
     by mutation:"
    s.cases s.applied s.skipped s.salvaged s.rejected s.raised
    s.intact_accepted
    (if s.pristine_intact then "intact" else "NOT INTACT");
  List.iter
    (fun (k, n) -> Format.fprintf fmt "@,  %-18s %d" (Corrupt.kind_name k) n)
    s.by_kind;
  Format.fprintf fmt "@,%s@]" (if ok s then "PASS" else "FAIL")
