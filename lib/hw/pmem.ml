let chunk_frames = 512 (* one 2 MiB chunk *)

(* A chunk is in exactly one state: free (member of [free_chunks]),
   fully allocated (member of [full]), or partially allocated (entry in
   [partial_free] listing its free offsets; its allocated frames are in
   [palloc]).  Tracking full chunks as single entries keeps multi-GiB
   guest allocations and the kexec reboot reclaim O(chunks), not
   O(frames). *)
type t = {
  total_frames : int;
  mutable free_chunks : int list;
  full : (int, unit) Hashtbl.t; (* chunk index -> () *)
  partial_free : (int, int list) Hashtbl.t; (* chunk -> free offsets, sorted *)
  palloc : (int, unit) Hashtbl.t; (* frame -> (), partial chunks only *)
  mutable free_count : int;
  reserved : (int, unit) Hashtbl.t;
  contents : (int, int64) Hashtbl.t;
}

exception Out_of_memory

let create ?(seed = 0x5EEDL) ~frames () =
  if frames <= 0 || frames mod chunk_frames <> 0 then
    invalid_arg "Pmem.create: frames must be a positive multiple of 512";
  let nchunks = frames / chunk_frames in
  let order = Array.init nchunks (fun i -> i) in
  let rng = Sim.Rng.create seed in
  Sim.Rng.shuffle rng order;
  {
    total_frames = frames;
    free_chunks = Array.to_list order;
    full = Hashtbl.create 4096;
    partial_free = Hashtbl.create 64;
    palloc = Hashtbl.create 4096;
    free_count = frames;
    reserved = Hashtbl.create 64;
    contents = Hashtbl.create 4096;
  }

let total_frames t = t.total_frames
let free_frames t = t.free_count
let used_frames t = t.total_frames - t.free_count

let is_allocated t mfn =
  let frame = Frame.Mfn.to_int mfn in
  Hashtbl.mem t.full (frame / chunk_frames) || Hashtbl.mem t.palloc frame

(* Take a whole fresh chunk as one fully-allocated extent. *)
let take_full_chunk t =
  match t.free_chunks with
  | [] -> raise Out_of_memory
  | chunk :: rest ->
    t.free_chunks <- rest;
    Hashtbl.replace t.full chunk ();
    t.free_count <- t.free_count - chunk_frames;
    (Frame.Mfn.of_int (chunk * chunk_frames), chunk_frames)

(* Take [n] < 512 frames from a fresh chunk, leaving the rest partial. *)
let take_from_fresh_chunk t n =
  match t.free_chunks with
  | [] -> raise Out_of_memory
  | chunk :: rest ->
    t.free_chunks <- rest;
    let base = chunk * chunk_frames in
    for i = 0 to n - 1 do
      Hashtbl.replace t.palloc (base + i) ()
    done;
    Hashtbl.replace t.partial_free chunk
      (List.init (chunk_frames - n) (fun i -> n + i));
    t.free_count <- t.free_count - n;
    (Frame.Mfn.of_int base, n)

(* Carve an aligned run of [n] frames out of a partially-used chunk. *)
let take_from_partial t ~align n =
  let found = ref None in
  let check chunk offsets =
    if !found = None then begin
      let arr = Array.of_list offsets in
      let len = Array.length arr in
      let i = ref 0 in
      while !found = None && !i < len do
        let start = arr.(!i) in
        if start mod align = 0 && !i + n <= len && arr.(!i + n - 1) = start + n - 1
        then begin
          let ok = ref true in
          for k = 0 to n - 1 do
            if arr.(!i + k) <> start + k then ok := false
          done;
          if !ok then found := Some (chunk, start)
        end;
        incr i
      done
    end
  in
  Hashtbl.iter check t.partial_free;
  match !found with
  | None -> None
  | Some (chunk, start) ->
    let offsets = Hashtbl.find t.partial_free chunk in
    let remaining = List.filter (fun o -> o < start || o >= start + n) offsets in
    let base = (chunk * chunk_frames) + start in
    for i = 0 to n - 1 do
      Hashtbl.replace t.palloc (base + i) ()
    done;
    if remaining = [] then begin
      (* Chunk became full: promote. *)
      Hashtbl.remove t.partial_free chunk;
      for off = 0 to chunk_frames - 1 do
        Hashtbl.remove t.palloc ((chunk * chunk_frames) + off)
      done;
      Hashtbl.replace t.full chunk ()
    end
    else Hashtbl.replace t.partial_free chunk remaining;
    t.free_count <- t.free_count - n;
    Some (Frame.Mfn.of_int base, n)

let alloc_extents t ?(align = 1) n =
  if n <= 0 then invalid_arg "Pmem.alloc_extents: non-positive count";
  if align <= 0 || chunk_frames mod align <> 0 then
    invalid_arg "Pmem.alloc_extents: align must divide 512";
  if n > t.free_count then raise Out_of_memory;
  let rec go remaining acc =
    if remaining = 0 then List.rev acc
    else if remaining >= chunk_frames then
      go (remaining - chunk_frames) (take_full_chunk t :: acc)
    else begin
      let want = remaining in
      let want = if want mod align = 0 then want else want - (want mod align) + align in
      let want = Stdlib.min want chunk_frames in
      let extent =
        if want = chunk_frames then take_full_chunk t
        else
          match take_from_partial t ~align want with
          | Some e -> e
          | None -> take_from_fresh_chunk t want
      in
      let _, len = extent in
      go (Stdlib.max 0 (remaining - len)) (extent :: acc)
    end
  in
  go n []

let alloc_frames t ?align n =
  let extents = alloc_extents t ?align n in
  List.concat_map
    (fun (start, len) -> List.init len (fun i -> Frame.Mfn.add start i))
    extents

let iter_extent f start len =
  let base = Frame.Mfn.to_int start in
  for i = 0 to len - 1 do
    f (base + i)
  done

(* Demote a full chunk to partial with every frame allocated. *)
let demote_full t chunk =
  Hashtbl.remove t.full chunk;
  Hashtbl.replace t.partial_free chunk [];
  for off = 0 to chunk_frames - 1 do
    Hashtbl.replace t.palloc ((chunk * chunk_frames) + off) ()
  done

let release_full_chunk t chunk =
  Hashtbl.remove t.full chunk;
  let base = chunk * chunk_frames in
  for off = 0 to chunk_frames - 1 do
    Hashtbl.remove t.contents (base + off)
  done;
  t.free_chunks <- chunk :: t.free_chunks;
  t.free_count <- t.free_count + chunk_frames

let free_partial_frame t frame =
  Hashtbl.remove t.palloc frame;
  Hashtbl.remove t.contents frame;
  t.free_count <- t.free_count + 1;
  let chunk = frame / chunk_frames and off = frame mod chunk_frames in
  let offsets = Option.value ~default:[] (Hashtbl.find_opt t.partial_free chunk) in
  let offsets = List.merge Int.compare [ off ] offsets in
  if List.length offsets = chunk_frames then begin
    Hashtbl.remove t.partial_free chunk;
    t.free_chunks <- chunk :: t.free_chunks
  end
  else Hashtbl.replace t.partial_free chunk offsets

let free_extent t start len =
  if len <= 0 then invalid_arg "Pmem.free_extent: non-positive length";
  iter_extent
    (fun frame ->
      if not (is_allocated t (Frame.Mfn.of_int frame)) then
        invalid_arg "Pmem.free_extent: frame not allocated";
      if Hashtbl.mem t.reserved frame then
        invalid_arg "Pmem.free_extent: frame is reserved")
    start len;
  let base = Frame.Mfn.to_int start in
  (* Fast path: whole aligned chunks. *)
  let i = ref 0 in
  while !i < len do
    let frame = base + !i in
    let chunk = frame / chunk_frames in
    if frame mod chunk_frames = 0 && len - !i >= chunk_frames
       && Hashtbl.mem t.full chunk
    then begin
      release_full_chunk t chunk;
      i := !i + chunk_frames
    end
    else begin
      if Hashtbl.mem t.full chunk then demote_full t chunk;
      free_partial_frame t frame;
      incr i
    end
  done

let reserve_extent t start len =
  iter_extent
    (fun frame ->
      if not (is_allocated t (Frame.Mfn.of_int frame)) then
        invalid_arg "Pmem.reserve_extent: frame not allocated")
    start len;
  iter_extent (fun frame -> Hashtbl.replace t.reserved frame ()) start len

let unreserve_extent t start len =
  iter_extent (fun frame -> Hashtbl.remove t.reserved frame) start len

let is_reserved t mfn = Hashtbl.mem t.reserved (Frame.Mfn.to_int mfn)

let write t mfn v =
  let frame = Frame.Mfn.to_int mfn in
  if not (is_allocated t mfn) then
    invalid_arg "Pmem.write: frame not allocated";
  Hashtbl.replace t.contents frame v

let read t mfn = Hashtbl.find_opt t.contents (Frame.Mfn.to_int mfn)

let wipe_unpreserved t ~preserve =
  let victims = ref [] in
  Hashtbl.iter
    (fun frame _ ->
      let mfn = Frame.Mfn.of_int frame in
      if (not (Hashtbl.mem t.reserved frame)) && not (preserve mfn) then
        victims := frame :: !victims)
    t.contents;
  List.iter (Hashtbl.remove t.contents) !victims;
  List.length !victims

let reboot_reset t ~preserve =
  let reclaimed = ref 0 in
  (* Full chunks: release wholesale when every frame is expendable. *)
  let full_chunks = Hashtbl.fold (fun c () acc -> c :: acc) t.full [] in
  List.iter
    (fun chunk ->
      let base = chunk * chunk_frames in
      let keep = ref false in
      let off = ref 0 in
      while (not !keep) && !off < chunk_frames do
        let frame = base + !off in
        if Hashtbl.mem t.reserved frame || preserve (Frame.Mfn.of_int frame)
        then keep := true;
        incr off
      done;
      if not !keep then begin
        release_full_chunk t chunk;
        reclaimed := !reclaimed + chunk_frames
      end
      else begin
        (* Mixed chunk: reclaim frame by frame. *)
        let victims = ref [] in
        for o = 0 to chunk_frames - 1 do
          let frame = base + o in
          if
            (not (Hashtbl.mem t.reserved frame))
            && not (preserve (Frame.Mfn.of_int frame))
          then victims := frame :: !victims
        done;
        if !victims <> [] then begin
          demote_full t chunk;
          List.iter
            (fun frame ->
              free_partial_frame t frame;
              incr reclaimed)
            !victims
        end
      end)
    full_chunks;
  (* Frames in partial chunks. *)
  let part = Hashtbl.fold (fun frame () acc -> frame :: acc) t.palloc [] in
  List.iter
    (fun frame ->
      if
        (not (Hashtbl.mem t.reserved frame))
        && not (preserve (Frame.Mfn.of_int frame))
      then begin
        free_partial_frame t frame;
        incr reclaimed
      end)
    part;
  !reclaimed

let iter_allocated t f =
  (* Deterministic ascending frame order regardless of Hashtbl layout:
     full chunks first by sorted chunk index, then frames of partial
     chunks by sorted frame number.  Two same-shaped pools always
     enumerate identically — the residual audit's sweep depends on it. *)
  let full_chunks =
    List.sort Int.compare (Hashtbl.fold (fun c () acc -> c :: acc) t.full [])
  in
  List.iter
    (fun chunk ->
      let base = chunk * chunk_frames in
      for off = 0 to chunk_frames - 1 do
        let frame = base + off in
        f (Frame.Mfn.of_int frame) (Hashtbl.find_opt t.contents frame)
      done)
    full_chunks;
  let part =
    List.sort Int.compare (Hashtbl.fold (fun fr () acc -> fr :: acc) t.palloc [])
  in
  List.iter
    (fun frame -> f (Frame.Mfn.of_int frame) (Hashtbl.find_opt t.contents frame))
    part

let pp_usage fmt t =
  Format.fprintf fmt "frames: %d total, %d used, %d free, %d reserved"
    t.total_frames (used_frames t) t.free_count (Hashtbl.length t.reserved)
