(** Complete architectural state of one virtual CPU. *)

type t = {
  index : int;
  regs : Regs.t;
  lapic : Lapic.t;
  mtrr : Mtrr.t;
  xsave : Xsave.t;
}

val generate : Sim.Rng.t -> index:int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
