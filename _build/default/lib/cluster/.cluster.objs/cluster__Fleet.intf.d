lib/cluster/fleet.mli: Format Sim
