let timelines ~rng ~sched ~duration_s =
  let latency = Sim.Trace.create ~name:"mysql-latency-ms" () in
  let qps = Sim.Trace.create ~name:"mysql-qps" () in
  let n = int_of_float duration_s in
  for i = 0 to n - 1 do
    let at = float_of_int i in
    let t = Sim.Time.of_sec_f at in
    match Sched.condition_at sched at with
    | Sched.Stopped -> Sim.Trace.add qps t 0.0
    | Sched.Running p ->
      Sim.Trace.add latency t
        (Profile.mysql_latency_ms p *. Sim.Rng.jitter rng 0.06);
      Sim.Trace.add qps t (Profile.mysql_qps p *. Sim.Rng.jitter rng 0.05)
    | Sched.Degraded (p, _) ->
      let lat =
        Profile.mysql_latency_ms p
        *. Profile.precopy_latency_factor Vmstate.Vm.Wl_mysql
      in
      let rate =
        Profile.mysql_qps p *. Profile.precopy_qps_factor Vmstate.Vm.Wl_mysql
      in
      Sim.Trace.add latency t (lat *. Sim.Rng.jitter rng 0.15);
      Sim.Trace.add qps t (rate *. Sim.Rng.jitter rng 0.10)
  done;
  (latency, qps)
