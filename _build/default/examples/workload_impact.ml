(* What a transplant feels like from inside the guest: Redis, MySQL and
   Darknet timelines around an InPlaceTP and a MigrationTP event
   (the Fig. 11/12 and Table 6 scenarios, at example scale).

   Run with: dune exec examples/workload_impact.exe *)

let transplant_at = 50.0

(* Build the guest-visible schedule around an InPlaceTP run. *)
let inplace_schedule () =
  let host =
    Hypertp.Api.provision ~name:"m1" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [
        Vmstate.Vm.config ~name:"app" ~vcpus:2 ~ram:(Hw.Units.gib 8)
          ~workload:Vmstate.Vm.Wl_redis ();
      ]
  in
  let report = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let gap =
    Sim.Time.to_sec_f (Hypertp.Phases.downtime_with_network report.phases)
  in
  let cpu_gap = Sim.Time.to_sec_f (Hypertp.Phases.downtime report.phases) in
  ( Workload.Sched.make ~initial:Workload.Profile.P_xen
      [
        (transplant_at, Workload.Sched.Stopped);
        (transplant_at +. gap, Workload.Sched.Running Workload.Profile.P_kvm);
      ],
    gap,
    cpu_gap )

let migration_schedule () =
  let src =
    Hypertp.Api.provision ~name:"src" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [
        Vmstate.Vm.config ~name:"app" ~vcpus:2 ~ram:(Hw.Units.gib 8)
          ~workload:Vmstate.Vm.Wl_redis ();
      ]
  in
  let dst =
    Hypertp.Api.provision ~name:"dst" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm []
  in
  let report = Hypertp.Api.transplant_migration ~src ~dst () in
  let vm = List.hd report.per_vm in
  let precopy = Sim.Time.to_sec_f vm.Hypertp.Migrate.precopy_time in
  let down = Sim.Time.to_sec_f vm.Hypertp.Migrate.downtime in
  ( Workload.Sched.make ~initial:Workload.Profile.P_xen
      [
        ( transplant_at,
          Workload.Sched.Degraded (Workload.Profile.P_xen, 1.1) );
        (transplant_at +. precopy, Workload.Sched.Stopped);
        ( transplant_at +. precopy +. down,
          Workload.Sched.Running Workload.Profile.P_kvm );
      ],
    precopy,
    down )

let sparkline trace =
  (* A rough terminal rendering: one char per 4 s bucket. *)
  let buckets = Sim.Trace.bucketize trace ~width:(Sim.Time.sec 4) in
  let peak =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1.0 buckets
  in
  String.concat ""
    (List.map
       (fun (_, v) ->
         let levels = [| " "; "."; ":"; "-"; "="; "#" |] in
         let i =
           int_of_float (Float.round (v /. peak *. 5.0))
         in
         levels.(Stdlib.max 0 (Stdlib.min 5 i)))
       buckets)

let () =
  let rng = Sim.Rng.create 77L in
  Format.printf "=== workload impact (transplant at t=%.0fs) ===@.@." transplant_at;

  let sched_ip, gap, cpu_gap = inplace_schedule () in
  (* Network-independent workloads (Darknet) only see the CPU-side
     pause, not the NIC re-initialisation (section 5.2). *)
  let sched_ip_cpu =
    Workload.Sched.make ~initial:Workload.Profile.P_xen
      [
        (transplant_at, Workload.Sched.Stopped);
        ( transplant_at +. cpu_gap,
          Workload.Sched.Running Workload.Profile.P_kvm );
      ]
  in
  let redis_ip =
    Workload.Redis.qps_timeline ~rng ~sched:sched_ip ~duration_s:200.0
  in
  Format.printf "--- Redis under InPlaceTP (service gap %.1f s incl. NIC) ---@."
    gap;
  Format.printf "qps |%s|@." (sparkline redis_ip);
  Format.printf "pre  %.0f qps -> post %.0f qps (+%.0f%%, KVM is faster here)@.@."
    (Workload.Redis.mean_qps redis_ip ~from_s:10.0 ~until_s:45.0)
    (Workload.Redis.mean_qps redis_ip ~from_s:80.0 ~until_s:190.0)
    (100.0
    *. ((Workload.Redis.mean_qps redis_ip ~from_s:80.0 ~until_s:190.0
        /. Workload.Redis.mean_qps redis_ip ~from_s:10.0 ~until_s:45.0)
       -. 1.0));

  let sched_mig, precopy, down = migration_schedule () in
  let redis_mig =
    Workload.Redis.qps_timeline ~rng ~sched:sched_mig ~duration_s:250.0
  in
  Format.printf
    "--- Redis under MigrationTP (pre-copy %.0f s, downtime %.0f ms) ---@."
    precopy (1000.0 *. down);
  Format.printf "qps |%s|@.@." (sparkline redis_mig);

  let lat, qps = Workload.Mysql.timelines ~rng ~sched:sched_mig ~duration_s:250.0 in
  Format.printf "--- MySQL under MigrationTP ---@.";
  Format.printf "lat |%s|@." (sparkline lat);
  Format.printf "qps |%s|@.@." (sparkline qps);

  let dk_ip = Workload.Darknet.train ~rng ~sched:sched_ip_cpu ~iterations:100 in
  let dk_none =
    Workload.Darknet.train ~rng
      ~sched:(Workload.Sched.always Workload.Profile.P_xen)
      ~iterations:100
  in
  Format.printf "--- Darknet training, 100 iterations (Table 6) ---@.";
  Format.printf "  no transplant: mean %.3f s, longest %.3f s@."
    dk_none.Workload.Darknet.mean_s dk_none.Workload.Darknet.longest_s;
  Format.printf "  InPlaceTP:     mean %.3f s, longest %.3f s (one iteration eats the pause)@."
    dk_ip.Workload.Darknet.mean_s dk_ip.Workload.Darknet.longest_s
