lib/hw/pmem.mli: Format Frame
