type phase = Stage | Stream | Converge | Swap | Reclaim

let all_phases = [ Stage; Stream; Converge; Swap; Reclaim ]

let phase_to_string = function
  | Stage -> "stage"
  | Stream -> "stream"
  | Converge -> "converge"
  | Swap -> "swap"
  | Reclaim -> "reclaim"

let pp_phase fmt p = Format.pp_print_string fmt (phase_to_string p)

type params = {
  precopy : Precopy.params;
  stage_boot : Sim.Time.t;
  swap_rtts : int;
  replay_budget : int;
  cutover_threshold_pages : int;
  watchdog_shrink : float;
}

let default_params ~nic ?(streams = 1) () =
  {
    precopy = Precopy.default_params ~nic ~streams ();
    stage_boot = Sim.Time.sec 20;
    swap_rtts = 3;
    replay_budget = 32;
    cutover_threshold_pages = 8;
    watchdog_shrink = 0.9;
  }

type verdict = Converging | Diverging of int

let pp_verdict fmt = function
  | Converging -> Format.pp_print_string fmt "converging"
  | Diverging i -> Format.fprintf fmt "diverging (watchdog tripped at round %d)" i

type plan = {
  stream_round : Precopy.round;
  replay_rounds : Precopy.round list;
  verdict : verdict;
  violator : Precopy.round option;
  final_pages : int;
  stream_time : Sim.Time.t;
  converge_time : Sim.Time.t;
  cutover_downtime : Sim.Time.t;
  wire_bytes : Hw.Units.bytes_;
}

let validate params ~page_bytes ~total_pages ~dirty_pages_per_sec =
  if total_pages <= 0 then invalid_arg "Shadow.plan: non-positive pages";
  if page_bytes <= 0 then invalid_arg "Shadow.plan: non-positive page size";
  if not (Float.is_finite dirty_pages_per_sec) || dirty_pages_per_sec < 0.0
  then invalid_arg "Shadow.plan: dirty rate must be finite and >= 0";
  if params.swap_rtts < 1 then invalid_arg "Shadow.plan: swap_rtts < 1";
  if params.replay_budget < 1 then invalid_arg "Shadow.plan: replay budget < 1";
  if not (params.watchdog_shrink > 0.0 && params.watchdog_shrink < 1.0) then
    invalid_arg "Shadow.plan: watchdog shrink outside (0, 1)"

(* The watchdog rule, shared verbatim between the analytic plan, the
   pure verdict function and the engine-timer run: replay round [i]
   (1-based over the replay list) is non-shrinking iff its page count
   fails to drop below [watchdog_shrink] x its predecessor's.  The
   stream round is the first predecessor. *)
let shrinks params ~prev ~cur =
  float_of_int cur < params.watchdog_shrink *. float_of_int prev

let watchdog_verdict params = function
  | [] | [ _ ] -> Converging
  | (first : Precopy.round) :: rest ->
    let rec walk i prev = function
      | [] -> Converging
      | (r : Precopy.round) :: rest ->
        if shrinks params ~prev ~cur:r.pages_sent then
          walk (i + 1) r.pages_sent rest
        else Diverging i
    in
    walk 1 first.Precopy.pages_sent rest

let plan params ~page_bytes ~total_pages ~dirty_pages_per_sec =
  validate params ~page_bytes ~total_pages ~dirty_pages_per_sec;
  let per_page = Precopy.page_time params.precopy ~page_bytes in
  let wire_per_page = page_bytes + params.precopy.Precopy.page_overhead_bytes in
  let round index pages =
    {
      Precopy.index;
      pages_sent = pages;
      duration = Sim.Time.of_sec_f (float_of_int pages *. per_page);
    }
  in
  let dirtied pages =
    Stdlib.min total_pages
      (int_of_float
         (Float.round (dirty_pages_per_sec *. (float_of_int pages *. per_page))))
  in
  let stream_round = round 0 total_pages in
  (* Replay until the dirty set is swappable, the budget runs out, or a
     round stops shrinking (the analytic image of the watchdog). *)
  let rec replay index prev_pages next_pages acc =
    if next_pages <= params.cutover_threshold_pages then
      (List.rev acc, Converging, None, next_pages)
    else if index > params.replay_budget then
      (List.rev acc, Diverging params.replay_budget, None, 0)
    else if not (shrinks params ~prev:prev_pages ~cur:next_pages) then
      (List.rev acc, Diverging index, Some (round index next_pages), 0)
    else
      let r = round index next_pages in
      replay (index + 1) next_pages (dirtied next_pages) (r :: acc)
  in
  let replay_rounds, verdict, violator, final_pages =
    replay 1 total_pages (dirtied total_pages) []
  in
  let sum_time rounds =
    List.fold_left
      (fun acc (r : Precopy.round) -> Sim.Time.add acc r.duration)
      Sim.Time.zero rounds
  in
  let pages_on_wire =
    List.fold_left
      (fun acc (r : Precopy.round) -> acc + r.pages_sent)
      stream_round.Precopy.pages_sent replay_rounds
    + final_pages
  in
  let latency = Hw.Nic.latency params.precopy.Precopy.nic in
  let cutover_downtime =
    match verdict with
    | Diverging _ -> Sim.Time.zero
    | Converging ->
      Sim.Time.add
        (Sim.Time.of_sec_f (float_of_int final_pages *. per_page))
        (Sim.Time.scale (float_of_int (1 + params.swap_rtts)) latency)
  in
  {
    stream_round;
    replay_rounds;
    verdict;
    violator;
    final_pages;
    stream_time = stream_round.Precopy.duration;
    converge_time = sum_time replay_rounds;
    cutover_downtime;
    wire_bytes = pages_on_wire * wire_per_page;
  }

type watchdog_outcome =
  | Watchdog_passed of Sim.Time.t
  | Watchdog_tripped of { trip_round : int; wall : Sim.Time.t }

let run_watchdog params ~engine ~rounds =
  match rounds with
  | [] -> Watchdog_passed Sim.Time.zero
  | (first : Precopy.round) :: rest ->
    let start = Sim.Engine.now engine in
    let outcome = ref (Watchdog_passed Sim.Time.zero) in
    let tripped = ref false in
    (* Each round races its completion event against a deadline timer
       set at [watchdog_shrink] x the previous round's duration.  The
       timer is armed before the completion event, so on a tie (an
       exactly non-shrinking round) the watchdog wins — matching the
       strict-shrink rule of [watchdog_verdict]. *)
    let rec arm i (prev : Precopy.round) = function
      | [] ->
        outcome :=
          Watchdog_passed (Sim.Time.sub (Sim.Engine.now engine) start)
      | (r : Precopy.round) :: rest ->
        let deadline = Sim.Time.scale params.watchdog_shrink prev.duration in
        let dog =
          Sim.Engine.schedule_timer_after engine deadline (fun () ->
              tripped := true;
              outcome :=
                Watchdog_tripped
                  {
                    trip_round = i;
                    wall = Sim.Time.sub (Sim.Engine.now engine) start;
                  })
        in
        Sim.Engine.schedule_after engine r.duration (fun () ->
            if not !tripped then begin
              Sim.Engine.cancel dog;
              arm (i + 1) r rest
            end)
    in
    (* The first replay round streams while the checkpoint settles; its
       own deadline is the stream round's shrink allowance. *)
    Sim.Engine.schedule_after engine first.duration (fun () ->
        arm 1 first rest);
    Sim.Engine.run engine;
    (match !outcome with
    | Watchdog_passed _ ->
      Watchdog_passed (Sim.Time.sub (Sim.Engine.now engine) start)
    | Watchdog_tripped _ as t -> t)

type stream_outcome =
  | Stream_ok of plan
  | Stream_dropped of {
      drop_round : int;
      spent : Sim.Time.t;
      wasted_bytes : Hw.Units.bytes_;
    }
  | Stream_diverged of plan

let attempt_stream params ?fault ?vm ~page_bytes ~total_pages
    ~dirty_pages_per_sec () =
  let fire site =
    match fault with Some f -> Fault.fire f ?vm site | None -> false
  in
  let per_page = Precopy.page_time params.precopy ~page_bytes in
  (* An injected divergence pushes the effective dirty rate past the
     link rate; the watchdog then finds it the honest way. *)
  let dirty_pages_per_sec =
    if fire Fault.Shadow_diverge then
      Float.max dirty_pages_per_sec (1.05 /. per_page)
    else dirty_pages_per_sec
  in
  let p = plan params ~page_bytes ~total_pages ~dirty_pages_per_sec in
  let wire_per_page = page_bytes + params.precopy.Precopy.page_overhead_bytes in
  let rec walk spent bytes = function
    | [] -> None
    | (r : Precopy.round) :: rest ->
      let spent = Sim.Time.add spent r.Precopy.duration in
      let bytes = bytes + (r.Precopy.pages_sent * wire_per_page) in
      if fire Fault.Shadow_stream_drop then
        Some (r.Precopy.index, spent, bytes)
      else walk spent bytes rest
  in
  match walk Sim.Time.zero 0 (p.stream_round :: p.replay_rounds) with
  | Some (drop_round, spent, wasted_bytes) ->
    Stream_dropped { drop_round; spent; wasted_bytes }
  | None -> (
    match p.verdict with
    | Converging -> Stream_ok p
    | Diverging _ -> Stream_diverged p)

let pp_plan fmt p =
  Format.fprintf fmt
    "shadow: stream %a + %d replay rounds (%a), %a; cutover %a (%d pages), %a \
     on wire"
    Sim.Time.pp p.stream_time
    (List.length p.replay_rounds)
    Sim.Time.pp p.converge_time pp_verdict p.verdict Sim.Time.pp
    p.cutover_downtime p.final_pages Hw.Units.pp_bytes p.wire_bytes
