lib/hv/host.ml: Format Hashtbl Hw Int64 Intf List Option Sim String Uisr Vmstate
