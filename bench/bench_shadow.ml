(* Shadow-host MigrationTP benchmark: the downtime-vs-spares-vs-wire
   frontier.

   Two layers:

   1. A head-to-head pair: the same source host evacuated once by a
      shadow-host cutover (pre-staged spare, streamed checkpoint,
      atomic identity swap) and once by classic MigrationTP
      (stop-and-copy).  The cutover pays only the final dirty set plus
      the ARP/route flip, so its downtime must come in well under the
      classic stop-and-copy blackout — the committed JSON pins the
      ratio below 0.2.

   2. A fleet frontier: Btrplace.choose_strategies over an N-host model
      with a mixed InPlaceTP-compatibility placement, swept across
      spare-lane counts and wire budgets.  Each point reports the
      strategy mix, the wire total and the worst migration-path
      downtime (shadow hosts pay the measured cutover downtime, classic
      hosts the measured stop-and-copy downtime) — more spares buy
      downtime with wire bytes, a tighter budget pushes hosts down to
      classic and then to defer.

   Emits BENCH_shadow.json (consumed by the shadow-fault-sweep CI
   job). *)

open Bench_util

let default_hosts = 200
let vms_per_host = 4
let inplace_fraction = 0.6
let seed = 7L

let provision_src name =
  Hypertp.Api.provision ~seed ~name ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Xen
    (List.init vms_per_host (fun i ->
         Vmstate.Vm.config
           ~name:(Printf.sprintf "vm%d" i)
           ~ram:(Hw.Units.gib 1) ()))

type pair = {
  shadow_downtime_s : float;
  classic_downtime_s : float;
  downtime_ratio : float;
  shadow_wire_bytes : int;
  classic_wire_bytes : int;
}

let measure_pair () =
  let src = provision_src "bench-src" in
  let spare = Hv.Host.create ~name:"bench-spare" (Hw.Machine.m1 ()) in
  let sh =
    Hypertp.Api.transplant_shadow ~rng:(Sim.Rng.create seed) ~src ~spare
      ~target:Hv.Kind.Kvm ()
  in
  assert (sh.Hypertp.Migrate.sh_strategy = Hypertp.Migrate.Shadow_cutover);
  let csrc = provision_src "bench-csrc" in
  let cdst = Hv.Host.create ~name:"bench-cdst" (Hw.Machine.m1 ()) in
  Hv.Host.boot_hypervisor cdst (Hypertp.Api.hypervisor_of Hv.Kind.Kvm);
  let cl =
    Hypertp.Api.transplant_migration ~rng:(Sim.Rng.create seed) ~src:csrc
      ~dst:cdst ()
  in
  let classic_downtime =
    List.fold_left
      (fun acc (v : Hypertp.Migrate.vm_report) ->
        Float.max acc (Sim.Time.to_sec_f v.Hypertp.Migrate.downtime))
      0.0 cl.Hypertp.Migrate.per_vm
  in
  let classic_wire =
    List.fold_left
      (fun acc (v : Hypertp.Migrate.vm_report) ->
        acc + v.Hypertp.Migrate.wire_bytes)
      0 cl.Hypertp.Migrate.per_vm
  in
  {
    shadow_downtime_s = Sim.Time.to_sec_f sh.Hypertp.Migrate.sh_downtime;
    classic_downtime_s = classic_downtime;
    downtime_ratio =
      Sim.Time.to_sec_f sh.Hypertp.Migrate.sh_downtime /. classic_downtime;
    shadow_wire_bytes = sh.Hypertp.Migrate.sh_wire_bytes;
    classic_wire_bytes = classic_wire;
  }

type point = {
  f_spares : int;
  f_budget : int option; (* None = unbounded *)
  f_inplace : int;
  f_shadow : int;
  f_migrate : int;
  f_defer : int;
  f_wire : int;
  f_downtime_s : float; (* worst migration-path downtime *)
}

let frontier ~hosts pair =
  let model () =
    Cluster.Model.make ~nodes:hosts ~vms_per_node:vms_per_host
      ~vm_ram:(Hw.Units.gib 4) ~node_ram:(Hw.Units.gib 96) ~inplace_fraction
      ~workload_mix:
        [ (Vmstate.Vm.Wl_streaming, 0.3); (Vmstate.Vm.Wl_spec "mcf", 0.3);
          (Vmstate.Vm.Wl_idle, 0.4) ]
      ()
  in
  (* Budgets as fractions of the unbounded all-shadow wire total, so
     the sweep spans "everyone fits" down to "most hosts defer". *)
  let full =
    (Cluster.Btrplace.choose_strategies ~spare_hosts:1 (model ()))
      .Cluster.Btrplace.wire_total
  in
  let budgets =
    [ None; Some full; Some (full / 2); Some (full / 4); Some (full / 10) ]
  in
  let spares = [ 0; 1; 2; 4 ] in
  List.concat_map
    (fun s ->
      List.map
        (fun b ->
          let p =
            Cluster.Btrplace.choose_strategies ~spare_hosts:s ?wire_budget:b
              (model ())
          in
          let downtime =
            if p.Cluster.Btrplace.n_migrate > 0 then pair.classic_downtime_s
            else if p.Cluster.Btrplace.n_shadow > 0 then
              pair.shadow_downtime_s
            else 0.0
          in
          {
            f_spares = s;
            f_budget = b;
            f_inplace = p.Cluster.Btrplace.n_inplace;
            f_shadow = p.Cluster.Btrplace.n_shadow;
            f_migrate = p.Cluster.Btrplace.n_migrate;
            f_defer = p.Cluster.Btrplace.n_defer;
            f_wire = p.Cluster.Btrplace.wire_total;
            f_downtime_s = downtime;
          })
        budgets)
    spares

let emit ~hosts pair points =
  let oc = open_out "BENCH_shadow.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"shadow\",\n  \"hosts\": %d,\n  \
     \"vms_per_host\": %d,\n  \"inplace_fraction\": %.2f,\n  \"pair\": \
     {\"shadow_downtime_s\": %.6f, \"classic_downtime_s\": %.6f, \
     \"downtime_ratio\": %.4f, \"shadow_wire_bytes\": %d, \
     \"classic_wire_bytes\": %d},\n  \"frontier\": [\n"
    hosts vms_per_host inplace_fraction pair.shadow_downtime_s
    pair.classic_downtime_s pair.downtime_ratio pair.shadow_wire_bytes
    pair.classic_wire_bytes;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"spares\": %d, \"wire_budget_bytes\": %s, \"inplace\": %d, \
         \"shadow\": %d, \"migrate\": %d, \"defer\": %d, \
         \"wire_total_bytes\": %d, \"max_migration_downtime_s\": %.6f}%s\n"
        p.f_spares
        (match p.f_budget with None -> "null" | Some b -> string_of_int b)
        p.f_inplace p.f_shadow p.f_migrate p.f_defer p.f_wire p.f_downtime_s
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_shadow.json@."

let run ?(hosts = default_hosts) () =
  note "== shadow-host cutover: downtime vs spares vs wire ==@.";
  let pair = measure_pair () in
  note
    "pair: shadow cutover %.3f ms vs classic stop-and-copy %.3f ms (ratio \
     %.3f)@."
    (pair.shadow_downtime_s *. 1e3)
    (pair.classic_downtime_s *. 1e3)
    pair.downtime_ratio;
  let points = frontier ~hosts pair in
  note "%-7s %-12s %-8s %-8s %-8s %-7s %-12s %s@." "spares" "budget" "inplace"
    "shadow" "migrate" "defer" "wire-GiB" "worst-mig-downtime";
  List.iter
    (fun p ->
      note "%-7d %-12s %-8d %-8d %-8d %-7d %-12.1f %.3f ms@." p.f_spares
        (match p.f_budget with
        | None -> "unbounded"
        | Some b ->
          Printf.sprintf "%.1fG" (float_of_int b /. float_of_int (Hw.Units.gib 1)))
        p.f_inplace p.f_shadow p.f_migrate p.f_defer
        (float_of_int p.f_wire /. float_of_int (Hw.Units.gib 1))
        (p.f_downtime_s *. 1e3))
    points;
  emit ~hosts pair points
