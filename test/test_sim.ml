(* Tests for the simulation kernel: virtual time, RNG, statistics,
   event engine, traces. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* --- Time --- *)

let test_time_units () =
  checki "us" 1_000 (Sim.Time.to_ns (Sim.Time.us 1));
  checki "ms" 1_000_000 (Sim.Time.to_ns (Sim.Time.ms 1));
  checki "sec" 1_000_000_000 (Sim.Time.to_ns (Sim.Time.sec 1));
  checkf "to_sec" 1.5 (Sim.Time.to_sec_f (Sim.Time.ms 1_500));
  checkf "to_ms" 2.5 (Sim.Time.to_ms_f (Sim.Time.us 2_500))

let test_time_arith () =
  let a = Sim.Time.ms 300 and b = Sim.Time.ms 200 in
  checki "add" 500_000_000 (Sim.Time.to_ns (Sim.Time.add a b));
  checki "sub" 100_000_000 (Sim.Time.to_ns (Sim.Time.sub a b));
  checki "diff symm" 100_000_000 (Sim.Time.to_ns (Sim.Time.diff b a));
  checki "scale" 150_000_000 (Sim.Time.to_ns (Sim.Time.scale 0.5 a));
  checki "sum" 600_000_000
    (Sim.Time.to_ns (Sim.Time.sum [ a; b; Sim.Time.ms 100 ]));
  checkb "le" true Sim.Time.(b <= a);
  checkb "lt" true Sim.Time.(b < a)

let test_time_invalid () =
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.ns: negative")
    (fun () -> ignore (Sim.Time.ns (-1)));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Time.sub: negative result") (fun () ->
      ignore (Sim.Time.sub (Sim.Time.ms 1) (Sim.Time.ms 2)));
  Alcotest.check_raises "negative float"
    (Invalid_argument "Time.of_sec_f: negative or non-finite") (fun () ->
      ignore (Sim.Time.of_sec_f (-0.1)))

let test_time_pp () =
  check Alcotest.string "seconds" "1.700s"
    (Sim.Time.to_string (Sim.Time.ms 1_700));
  check Alcotest.string "millis" "4.96ms"
    (Sim.Time.to_string (Sim.Time.us 4_960));
  check Alcotest.string "micros" "133us"
    (Sim.Time.to_string (Sim.Time.us 133));
  check Alcotest.string "nanos" "42ns" (Sim.Time.to_string (Sim.Time.ns 42))

let prop_time_of_to_sec =
  QCheck.Test.make ~name:"of_sec_f/to_sec_f round within 1ns"
    QCheck.(float_bound_inclusive 1e6)
    (fun s ->
      let t = Sim.Time.of_sec_f s in
      Float.abs (Sim.Time.to_sec_f t -. s) < 1e-9 *. Float.max 1.0 s *. 2.0)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create 42L in
  let child = Sim.Rng.split a in
  let x = Sim.Rng.int64 child in
  let y = Sim.Rng.int64 a in
  checkb "split streams differ" true (not (Int64.equal x y))

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float within bounds" QCheck.small_int
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let v = Sim.Rng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

let prop_rng_jitter_bounds =
  QCheck.Test.make ~name:"Rng.jitter within [1-p,1+p]" QCheck.small_int
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let v = Sim.Rng.jitter rng 0.05 in
      v >= 0.95 && v <= 1.05000001)

let test_rng_gaussian_moments () =
  let rng = Sim.Rng.create 7L in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Sim.Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  let mean = Sim.Stats.mean samples in
  let sd = Sim.Stats.stddev samples in
  checkb "mean near 5" true (Float.abs (mean -. 5.0) < 0.1);
  checkb "stddev near 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Sim.Rng.create 9L in
  let a = Array.init 100 (fun i -> i) in
  Sim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  checkb "permutation" true (Array.to_list sorted = List.init 100 (fun i -> i));
  checkb "actually shuffled" true (a <> Array.init 100 (fun i -> i))

(* --- Stats --- *)

let test_stats_summary () =
  let s = Sim.Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "mean" 3.0 s.Sim.Stats.mean;
  checkf "median" 3.0 s.Sim.Stats.median;
  checkf "min" 1.0 s.Sim.Stats.min;
  checkf "max" 5.0 s.Sim.Stats.max;
  checkf "q1" 2.0 s.Sim.Stats.q1;
  checkf "q3" 4.0 s.Sim.Stats.q3;
  checki "n" 5 s.Sim.Stats.n

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  checkf "p0" 10.0 (Sim.Stats.percentile xs 0.0);
  checkf "p100" 40.0 (Sim.Stats.percentile xs 100.0);
  checkf "p50 interp" 25.0 (Sim.Stats.percentile xs 50.0)

let test_stats_percentile_edges () =
  (* A single sample answers every percentile. *)
  checkf "single p0" 7.0 (Sim.Stats.percentile [ 7.0 ] 0.0);
  checkf "single p50" 7.0 (Sim.Stats.percentile [ 7.0 ] 50.0);
  checkf "single p100" 7.0 (Sim.Stats.percentile [ 7.0 ] 100.0);
  (* Duplicates: interpolation between equal neighbours is exact. *)
  let dups = [ 5.0; 5.0; 5.0; 9.0 ] in
  checkf "dup p25" 5.0 (Sim.Stats.percentile dups 25.0);
  checkf "dup p50" 5.0 (Sim.Stats.percentile dups 50.0);
  checkf "dup p100" 9.0 (Sim.Stats.percentile dups 100.0);
  (* Input order must not matter. *)
  checkf "unsorted" 25.0 (Sim.Stats.percentile [ 40.0; 10.0; 30.0; 20.0 ] 50.0);
  (* Interpolation at a non-grid rank: p75 of 4 samples is rank 2.25. *)
  checkf "fractional rank" 32.5
    (Sim.Stats.percentile [ 10.0; 20.0; 30.0; 40.0 ] 75.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Sim.Stats.percentile [ 1.0 ] 100.1));
  Alcotest.check_raises "negative p"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Sim.Stats.percentile [ 1.0 ] (-0.1)))

let test_stats_stddev () =
  checkf "constant" 0.0 (Sim.Stats.stddev [ 2.0; 2.0; 2.0 ]);
  checkf "sample sd" 1.0 (Sim.Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_low_variance () =
  checkb "tight" true
    (Sim.Stats.low_variance (Sim.Stats.summarize [ 100.0; 100.5; 99.8 ]));
  checkb "loose" false
    (Sim.Stats.low_variance (Sim.Stats.summarize [ 100.0; 150.0; 60.0 ]))

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Sim.Stats.summarize []))

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Sim.Stats.summarize xs in
      s.Sim.Stats.min <= s.Sim.Stats.mean +. 1e-9
      && s.Sim.Stats.mean <= s.Sim.Stats.max +. 1e-9)

(* --- Engine --- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule_at e (Sim.Time.ms 30) (fun () -> log := 3 :: !log);
  Sim.Engine.schedule_at e (Sim.Time.ms 10) (fun () -> log := 1 :: !log);
  Sim.Engine.schedule_at e (Sim.Time.ms 20) (fun () -> log := 2 :: !log);
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_tie_break () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule_at e (Sim.Time.ms 10) (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.int) "fifo ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cascade () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Sim.Engine.schedule_after e (Sim.Time.ms 5) tick
  in
  Sim.Engine.schedule_at e Sim.Time.zero tick;
  Sim.Engine.run e;
  checki "cascaded" 10 !count;
  checki "clock" 45_000_000 (Sim.Time.to_ns (Sim.Engine.now e))

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule_at e (Sim.Time.ms 10) (fun () -> incr fired);
  Sim.Engine.schedule_at e (Sim.Time.ms 50) (fun () -> incr fired);
  Sim.Engine.run_until e (Sim.Time.ms 20);
  checki "only first fired" 1 !fired;
  checki "clock at limit" 20_000_000 (Sim.Time.to_ns (Sim.Engine.now e));
  checki "one pending" 1 (Sim.Engine.pending e)

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule_at e (Sim.Time.ms 10) (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
          Sim.Engine.schedule_at e (Sim.Time.ms 5) ignore));
  Sim.Engine.run e

let test_engine_many_events () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 3L in
  let last = ref Sim.Time.zero in
  let monotone = ref true in
  for _ = 1 to 2000 do
    let at = Sim.Time.ms (Sim.Rng.int rng 10_000) in
    Sim.Engine.schedule_at e at (fun () ->
        if Sim.Time.compare (Sim.Engine.now e) !last < 0 then monotone := false;
        last := Sim.Engine.now e)
  done;
  Sim.Engine.run e;
  checkb "clock monotone over 2000 events" true !monotone

(* --- Trace --- *)

let test_trace_basics () =
  let t = Sim.Trace.create ~name:"t" () in
  Sim.Trace.add t (Sim.Time.sec 1) 10.0;
  Sim.Trace.add t (Sim.Time.sec 2) 20.0;
  Sim.Trace.mark t (Sim.Time.sec 1) "start";
  checki "samples" 2 (List.length (Sim.Trace.samples t));
  checki "markers" 1 (List.length (Sim.Trace.markers t));
  checkf "mean window" 15.0
    (Sim.Trace.mean_between t Sim.Time.zero (Sim.Time.sec 3))

let test_trace_backwards_rejected () =
  let t = Sim.Trace.create ~name:"t" () in
  Sim.Trace.add t (Sim.Time.sec 2) 1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Trace.add: time going backwards") (fun () ->
      Sim.Trace.add t (Sim.Time.sec 1) 1.0)

let test_trace_pp_interleaving () =
  (* When a marker and a sample share a timestamp the marker renders
     first (it names the event that explains the reading), and markers
     sharing a timestamp keep insertion order. *)
  let t = Sim.Trace.create ~name:"t" () in
  Sim.Trace.add t (Sim.Time.sec 1) 10.0;
  Sim.Trace.mark t (Sim.Time.sec 1) "first";
  Sim.Trace.mark t (Sim.Time.sec 1) "second";
  Sim.Trace.add t (Sim.Time.sec 2) 20.0;
  let out = Format.asprintf "%a" Sim.Trace.pp t in
  let pos needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i =
      if i + nl > hl then Alcotest.failf "missing %S in %S" needle out
      else if String.sub out i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  checkb "marker before same-time sample" true (pos "first" < pos "10");
  checkb "markers keep insertion order" true (pos "first" < pos "second");
  checkb "later sample last" true (pos "second" < pos "20")

let test_engine_timer_hook () =
  let e = Sim.Engine.create () in
  let notices = ref [] in
  Sim.Engine.set_timer_hook e (fun at n ->
      notices := (Sim.Time.to_ns at, n) :: !notices);
  let _fires = Sim.Engine.schedule_timer_at e (Sim.Time.ms 5) (fun () -> ()) in
  let doomed = Sim.Engine.schedule_timer_at e (Sim.Time.ms 9) (fun () -> ()) in
  Sim.Engine.schedule_at e (Sim.Time.ms 2) (fun () -> Sim.Engine.cancel doomed);
  Sim.Engine.run e;
  (* Cancellation is recorded at the cancel time, not the would-be fire
     time. *)
  checkb "notices" true
    (List.rev !notices = [ (2_000_000, `Cancelled); (5_000_000, `Fired) ]);
  Sim.Engine.clear_timer_hook e;
  let e2 = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_timer_at e2 (Sim.Time.ms 1) (fun () -> ()));
  Sim.Engine.run e2;
  checki "hook cleared, nothing new" 2 (List.length !notices)

let test_trace_bucketize () =
  let t = Sim.Trace.create ~name:"t" () in
  List.iter
    (fun (s, v) -> Sim.Trace.add t (Sim.Time.sec s) v)
    [ (0, 10.0); (1, 20.0); (4, 40.0) ];
  let buckets = Sim.Trace.bucketize t ~width:(Sim.Time.sec 2) in
  checki "bucket count" 3 (List.length buckets);
  (match buckets with
  | [ (_, b0); (_, b1); (_, b2) ] ->
    checkf "avg bucket0" 15.0 b0;
    checkf "empty bucket is 0" 0.0 b1;
    checkf "bucket2" 40.0 b2
  | _ -> Alcotest.fail "unexpected buckets")

let test_trace_between () =
  let t = Sim.Trace.create ~name:"t" () in
  List.iter
    (fun s -> Sim.Trace.add t (Sim.Time.sec s) (float_of_int s))
    [ 0; 1; 2; 3; 4 ];
  checki "window half-open" 2
    (List.length (Sim.Trace.between t (Sim.Time.sec 1) (Sim.Time.sec 3)))

let test_engine_schedule_every () =
  let eng = Sim.Engine.create () in
  let ticks = ref [] in
  Sim.Engine.schedule_every eng (Sim.Time.sec 5) (fun () ->
      ticks := Sim.Time.to_ns (Sim.Engine.now eng) :: !ticks;
      if List.length !ticks >= 3 then `Stop else `Continue);
  (* an explicit start overrides the default now+period *)
  let started = ref [] in
  Sim.Engine.schedule_every eng ~start:(Sim.Time.sec 1) (Sim.Time.sec 100)
    (fun () ->
      started := Sim.Time.to_ns (Sim.Engine.now eng) :: !started;
      `Stop);
  Sim.Engine.run eng;
  Alcotest.(check (list int))
    "periodic ticks at 5s/10s/15s"
    [ Sim.Time.to_ns (Sim.Time.sec 5); Sim.Time.to_ns (Sim.Time.sec 10);
      Sim.Time.to_ns (Sim.Time.sec 15) ]
    (List.rev !ticks);
  Alcotest.(check (list int))
    "explicit start honoured, Stop ends the series"
    [ Sim.Time.to_ns (Sim.Time.sec 1) ]
    (List.rev !started);
  checkb "non-positive period rejected" true
    (try
       Sim.Engine.schedule_every eng Sim.Time.zero (fun () -> `Stop);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "sim.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "invalid inputs" `Quick test_time_invalid;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
        qtest prop_time_of_to_sec;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        qtest prop_rng_int_bounds;
        qtest prop_rng_float_bounds;
        qtest prop_rng_jitter_bounds;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentile edge cases" `Quick
          test_stats_percentile_edges;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "low variance criterion" `Quick test_stats_low_variance;
        Alcotest.test_case "empty rejected" `Quick test_stats_empty;
        qtest prop_stats_mean_bounds;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time ordering" `Quick test_engine_ordering;
        Alcotest.test_case "tie break is FIFO" `Quick test_engine_tie_break;
        Alcotest.test_case "cascading events" `Quick test_engine_cascade;
        Alcotest.test_case "run_until" `Quick test_engine_run_until;
        Alcotest.test_case "past scheduling rejected" `Quick test_engine_past_rejected;
        Alcotest.test_case "2000 random events stay monotone" `Quick
          test_engine_many_events;
        Alcotest.test_case "timer hook" `Quick test_engine_timer_hook;
        Alcotest.test_case "schedule_every" `Quick test_engine_schedule_every;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "basics" `Quick test_trace_basics;
        Alcotest.test_case "backwards rejected" `Quick test_trace_backwards_rejected;
        Alcotest.test_case "bucketize" `Quick test_trace_bucketize;
        Alcotest.test_case "between window" `Quick test_trace_between;
        Alcotest.test_case "pp interleaving tie-break" `Quick
          test_trace_pp_interleaving;
      ] );
  ]
