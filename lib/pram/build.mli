(** Building the PRAM structure in host memory.

    The builder allocates 4 KiB metadata pages from the host allocator,
    serialises the pointer/root/file-info/node pages into them, reserves
    them so the micro-reboot cannot scrub them, and stamps each metadata
    frame with a sentinel content tag so the parser can detect
    clobbering.  Construction happens {e before} VMs are paused
    (section 4.2.5 optimisation 1); only {!finalize} — sealing the entry
    chains after the final dirty state is known — runs inside the
    downtime window. *)

type file = {
  file_name : string;
  file_size : Hw.Units.bytes_;
  file_mode : int;
  entries : Entry.t list;
}

type image
(** The built structure as it sits in RAM. *)

val sentinel : int64

val build :
  pmem:Hw.Pmem.t -> granularity:Hw.Units.page_kind ->
  (string * Hw.Units.bytes_ * Uisr.Vm_state.memmap_entry list) list -> image
(** One file per VM: (name, size, memory map).  Raises
    [Invalid_argument] on an empty VM list and {!Hw.Pmem.Out_of_memory}
    if metadata does not fit. *)

val crc_offset : int
(** Byte offset of the per-page CRC32 slot (bytes 4-7, free in every
    page kind). *)

val page_crc : bytes -> int32
(** CRC32 of a metadata page, computed with the CRC slot zeroed. *)

val stored_crc : bytes -> int32
(** The stamped checksum; 0 on pages from pre-CRC builds. *)

val pointer_mfn : image -> Hw.Frame.Mfn.t
val files : image -> file list

val file_info_mfns : image -> Hw.Frame.Mfn.t list
(** The file-info page of each VM, in build (= VM) order. *)

val corrupt_file : image -> index:int -> Hw.Frame.Mfn.t
(** Flip one byte inside the [index]-th VM's file-info page — in-page
    bit-rot that leaves the kind byte, links and pmem sentinel intact,
    detectable only by the page CRC.  Returns the damaged frame.
    Raises [Invalid_argument] if there is no such file. *)

val accounting : image -> Layout.accounting
val metadata_extents : image -> (Hw.Frame.Mfn.t * int) list
val page_content : image -> Hw.Frame.Mfn.t -> bytes option
(** Read a metadata page out of the in-RAM image (what a parser running
    after kexec sees). *)

val preserve_predicate : image -> Hw.Frame.Mfn.t -> bool
(** True for frames the micro-reboot must not scrub: metadata pages and
    every guest frame covered by an entry. *)

val release : image -> pmem:Hw.Pmem.t -> unit
(** Step 7 of the workflow: free the metadata pages once VMs run again
    ("the portions of the RAM which were used to store ephemeral data
    are freed"). *)
