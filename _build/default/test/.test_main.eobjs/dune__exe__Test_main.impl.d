test/test_main.ml: Alcotest Test_bhyve Test_cluster Test_cve Test_extras Test_hv Test_hw Test_hypertp Test_kexec Test_migration Test_pram Test_sim Test_uisr Test_vmstate Test_workload Test_xen_kvm
