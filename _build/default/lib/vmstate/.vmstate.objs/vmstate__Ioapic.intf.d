lib/vmstate/ioapic.mli: Format Sim
