examples/cve_response.ml: Cve Format Hv Hw Hypertp List Sim Vmstate
