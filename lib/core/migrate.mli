(** MigrationTP: live-migration-based hypervisor transplant
    (sections 3.3 and 4.3), plus the homogeneous live-migration baseline
    it is compared against (Table 4, Figs. 8-9).

    The pre-copy data path is the standard one; the MigrationTP novelty
    is the pair of proxies translating VM_i State through UISR so source
    and destination may run different hypervisors.  Guest pages are
    never translated — they are copied verbatim.

    Link faults (armed through a {!Fault} plan) hit individual pre-copy
    rounds: a degraded link doubles the round's duration, a dropped
    link aborts the attempt.  Pre-copy is non-destructive — the source
    VM never paused — so a dropped attempt is retried after an
    exponential backoff until the per-VM attempt budget runs out. *)

type outcome =
  | Completed
  | Completed_after_retries of int
      (** succeeded, but only after this many dropped attempts *)
  | Aborted_link_failure of int
      (** the link died during this pre-copy round on the final
          attempt; the source VM keeps running and the
          partially-populated destination is torn down *)
  | Aborted_state_corruption of int
      (** every one of this many state-chunk transmissions failed the
          receiver's CRC verification; the source VM resumes where it
          paused and the destination discards its copy *)

type retry_params = {
  max_attempts : int;      (** total attempts per VM, including the first *)
  backoff_base : Sim.Time.t;  (** wait before the first retry *)
  backoff_factor : float;  (** multiplier per subsequent retry *)
}

val default_retry : retry_params
(** 3 attempts, 500 ms base, doubling: waits 0.5 s then 1 s. *)

type vm_report = {
  vm_name : string;
  rounds : int;
  precopy_time : Sim.Time.t;
      (** successful attempt only (degraded rounds included) *)
  downtime : Sim.Time.t;
      (** stop-and-copy + state transfer + receive-queue wait +
          destination resume *)
  queue_wait : Sim.Time.t;
      (** time spent waiting for a sequential receiver (Xen) *)
  retries : int;          (** dropped attempts that were retried *)
  retry_wait : Sim.Time.t;   (** total backoff time *)
  wasted_time : Sim.Time.t;  (** wire time of all dropped attempts *)
  state_retransmits : int;
      (** state chunks the receiver rejected (CRC verification before
          ack) and the source resent; each stretches the downtime by
          one state-transfer time *)
  total_time : Sim.Time.t;
  wire_bytes : Hw.Units.bytes_;
      (** includes per-page protocol overhead and the bytes burnt by
          dropped attempts *)
  state_bytes : int; (** UISR (or native-context) platform payload *)
  fixups : Uisr.Fixup.t list;
  outcome : outcome;
}

type checks = {
  memory_equal : bool;  (** destination guest memory == source at pause *)
  connections_preserved : bool;
  management_consistent : bool;
  residual_clean : bool;
      (** the optional post-migration audit found nothing, or the scrub
          remediated everything it found; [true] when the audit was not
          armed *)
}

type report = {
  kind : [ `Migration_tp | `Homogeneous ];
  src_hv : string;
  dst_hv : string;
  per_vm : vm_report list;
  total_time : Sim.Time.t;
      (** completion of the last VM, setup included, plus any
          post-migration audit/scrub time *)
  checks : checks;
  audit : Audit.report option;
      (** final post-migration audit of the destination world when armed
          via {!Ctx.t.audit} (the recheck report if a scrub ran) *)
  audit_time : Sim.Time.t;
      (** audit + scrub time charged into [total_time] (zero when
          unarmed); equals the extent of the [audit]/[scrub] spans laid
          on the destination host track *)
}

val run :
  ?ctx:Ctx.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t -> ?retry:retry_params ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> src:Hv.Host.t ->
  dst:Hv.Host.t -> ?vm_names:string list -> unit -> report
(** Migrate the named VMs (default: all) from [src] to [dst].  The run
    knobs (rng/fault/obs/metrics) may be bundled as [?ctx] ({!Ctx.t});
    the individual optional arguments are deprecated wrappers that
    override the corresponding [ctx] field ({!Ctx.resolve}).  [retry]
    stays a separate argument — it is migration-specific.  The
    destination hypervisor must already be booted; the kind is inferred:
    same hypervisor -> homogeneous baseline (native-format stream,
    Xen's sequential receive), different -> MigrationTP (UISR proxies).
    Source VMs are destroyed after a successful hand-off, as in real
    live migration.

    [fault] arms {!Fault.Migration_link_drop} /
    {!Fault.Migration_link_degrade} injections against pre-copy rounds,
    and {!Fault.Uisr_corrupt} against the platform-state transmission:
    the receiving proxy runs [Uisr.Codec.decode_verified] on the chunk
    before acking and asks for a retransmit on anything short of
    [Intact].  [retry] bounds both the per-VM link retry loop and the
    retransmit budget (default {!default_retry}).  A VM whose attempts
    are exhausted stays resident and running on the source, with the
    wasted wire time and bytes accounted.

    [obs] records each VM's migration on its own [vm:<name>] track:
    setup, every link-dropped attempt and its backoff sleep, the
    pre-copy span with one child per analytic round, and the downtime
    span annotated with retransmit events; the root span's extent
    equals the VM's [total_time] exactly.  [metrics] accumulates
    [hypertp_migrations_total], retry/retransmit counters,
    [hypertp_wire_bytes_total], [hypertp_faults_total] and a
    [hypertp_downtime_seconds] histogram.

    When [ctx] arms the audit ({!Ctx.t.audit}), a post-migration
    residual audit sweeps the destination world against a fresh-boot
    reference after the last VM lands, using the transmitted UISR blobs
    as the guest baseline.  Findings trigger a scrub-and-recheck; a
    scrub failure (the [scrub_fail] fault site, or residue the scrub
    cannot remediate) fails the [residual_clean] check.  The
    [residual_leak] fault site plants residue on the destination for
    the audit to catch.

    Raises [Invalid_argument] if the destination lacks memory or a
    hypervisor, a VM name is unknown, or [retry.max_attempts < 1]. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Shadow-host MigrationTP}

    The abort-safe variant: pre-stage the target hypervisor on a spare
    host, stream the checkpoint while the source serves traffic, replay
    dirty state in bounded rounds and swap identities atomically.  The
    five-phase transaction (stage -> stream -> converge -> swap ->
    reclaim) keeps every pre-swap phase analytic on the source side, so
    {e any} fault before the identity swap leaves the source
    byte-identical and running — the abort handler re-verifies the
    entry fingerprint and reports it as [sh_source_intact] rather than
    assuming it. *)

type shadow_strategy =
  | Shadow_cutover  (** the swap committed; VMs run on the spare *)
  | Classic_fallback of Fault.site
      (** a pre-swap abort at this site degraded the run to classic
          {!run} against the staged spare (its report is embedded) *)
  | Shadow_deferred of Fault.site
      (** no spare to land on (or the ladder is disabled): nothing ran,
          the source keeps its VMs and the exposure window stays open *)

type shadow_vm = {
  sv_name : string;
  sv_plan : Migration.Shadow.plan option;
      (** [None] when the checkpoint stream died before a plan landed *)
  sv_downtime : Sim.Time.t;  (** zero unless this VM cut over *)
  sv_wire_bytes : Hw.Units.bytes_;
      (** checkpoint + replay + platform state; for an aborted stream,
          the bytes burnt before the drop *)
  sv_state_bytes : int;  (** UISR platform payload; 0 before the swap *)
}

type shadow_report = {
  sh_src_hv : string;
  sh_target_hv : string;
  sh_spare : string;  (** spare host name *)
  sh_strategy : shadow_strategy;
  sh_phases : (Migration.Shadow.phase * Sim.Time.t) list;
      (** all five phases in order, zero where never reached; their sum
          equals [sh_shadow_time] (and the root span's extent) exactly *)
  sh_per_vm : shadow_vm list;
  sh_downtime : Sim.Time.t;
      (** max per-VM cutover downtime; the classic fallback's downtime
          when degraded; zero when deferred *)
  sh_wire_bytes : Hw.Units.bytes_;
      (** shadow bytes (wasted ones included) plus the classic
          fallback's, when it ran *)
  sh_shadow_time : Sim.Time.t;  (** the five phases, summed *)
  sh_total_time : Sim.Time.t;
      (** [sh_shadow_time] plus the classic fallback's total *)
  sh_source_intact : bool;
      (** on an abort: the source management plane is consistent and
          every VM is still running with its entry checksum (verified,
          not assumed); vacuously [true] on a committed cutover *)
  sh_watchdog_trips : int;  (** convergence-watchdog timers that fired *)
  sh_watchdog_cancels : int;
      (** deadline timers cancelled by in-time round completions *)
  sh_checks : checks option;
      (** cutover verification on the spare ([Some] only when the swap
          committed; a degraded run's checks live in [sh_classic]) *)
  sh_classic : report option;  (** the embedded classic fallback report *)
}

val run_shadow :
  ?ctx:Ctx.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t -> ?retry:retry_params ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t ->
  ?params:Migration.Shadow.params -> ?ladder:bool -> src:Hv.Host.t ->
  spare:Hv.Host.t -> target:(module Hv.Intf.S) -> ?vm_names:string list ->
  unit -> shadow_report
(** Shadow-host transplant of the named VMs (default: all) from [src]
    onto [spare], which must be empty and either idle (the stage phase
    boots [target] on it) or pre-staged with [target] already running.
    [params] defaults to {!Migration.Shadow.default_params} over the
    source NIC with one stream per VM.

    [fault] arms the five shadow sites.  {!Fault.Spare_exhausted} hits
    admission (before the spare is touched) and {e always} defers —
    classic MigrationTP needs the same spare.  {!Fault.Shadow_stage_fail}
    hits skeleton pre-staging after the target boots;
    {!Fault.Shadow_stream_drop} and {!Fault.Shadow_diverge} hit the
    stream/converge walk (divergence is detected by the engine-timer
    watchdog, not asserted); {!Fault.Swap_partition} hits the handshake
    strictly before the flip.  All five abort with the source verified
    intact, then walk the degradation ladder: classic {!run} against
    the staged spare when [ladder] (default from {!Ctx.t.shadow},
    ultimately [true]), defer otherwise.

    [obs] lays the five phase spans back-to-back from t=0 on the
    [shadow:<src>] track under one root whose extent equals
    [sh_shadow_time] to the nanosecond, with an [identity_swap] event
    at the swap boundary or an [abort:<site>] event at the end;
    [metrics] accumulates [hypertp_shadow_total] (by strategy),
    [hypertp_wire_bytes_total], watchdog trip/cancel counters,
    [hypertp_faults_total] and the [hypertp_downtime_seconds] histogram
    (committed cutovers only).

    Raises [Invalid_argument] if [src] has no running hypervisor or no
    VMs, a VM name is unknown, or the spare is non-empty or runs a
    hypervisor other than [target]. *)

val pp_shadow_strategy : Format.formatter -> shadow_strategy -> unit
val pp_shadow_report : Format.formatter -> shadow_report -> unit
