type parsed_file = {
  name : string;
  size : Hw.Units.bytes_;
  mode : int;
  entries : Entry.t list;
}

type error =
  | Missing_page of Hw.Frame.Mfn.t
  | Clobbered_page of Hw.Frame.Mfn.t
  | Bad_page_kind of { mfn : Hw.Frame.Mfn.t; expected : int; got : int }
  | Page_crc_mismatch of Hw.Frame.Mfn.t
  | Cycle_detected

let pp_error fmt = function
  | Missing_page mfn -> Format.fprintf fmt "missing page at %a" Hw.Frame.Mfn.pp mfn
  | Clobbered_page mfn ->
    Format.fprintf fmt "clobbered page at %a (sentinel gone)" Hw.Frame.Mfn.pp mfn
  | Bad_page_kind { mfn; expected; got } ->
    Format.fprintf fmt "page %a: expected kind 0x%x, got 0x%x" Hw.Frame.Mfn.pp
      mfn expected got
  | Page_crc_mismatch mfn ->
    Format.fprintf fmt "page %a: CRC mismatch (in-page bit-rot)"
      Hw.Frame.Mfn.pp mfn
  | Cycle_detected -> Format.pp_print_string fmt "cycle in page chain"

exception Fail of error

let get_u64 page off = Bytes.get_int64_le page off

let load_page ~pmem ~image ~expected mfn =
  (match Hw.Pmem.read pmem mfn with
  | Some tag when Int64.equal tag Build.sentinel -> ()
  | Some _ | None -> raise (Fail (Clobbered_page mfn)));
  match Build.page_content image mfn with
  | None -> raise (Fail (Missing_page mfn))
  | Some page ->
    (* A stored CRC of 0 marks a page from a pre-CRC build: accepted,
       with only the sentinel and kind byte to vouch for it. *)
    let stored = Build.stored_crc page in
    if (not (Int32.equal stored 0l))
       && not (Int32.equal stored (Build.page_crc page))
    then raise (Fail (Page_crc_mismatch mfn));
    let kind = Bytes.get_uint8 page 0 in
    if kind <> expected then
      raise (Fail (Bad_page_kind { mfn; expected; got = kind }));
    page

let is_null mfn = Hw.Frame.Mfn.to_int mfn = 0

let max_chain = 1 lsl 20

let walk_chain ~pmem ~image ~expected first f =
  let rec go mfn steps acc =
    if is_null mfn then List.rev acc
    else if steps > max_chain then raise (Fail Cycle_detected)
    else begin
      let page = load_page ~pmem ~image ~expected mfn in
      let next = Hw.Frame.Mfn.of_int (Int64.to_int (get_u64 page 8)) in
      go next (steps + 1) (f page :: acc)
    end
  in
  go first 0 []

let parse_node_chain ~pmem ~image first =
  let per_page page =
    let count = Bytes.get_uint16_le page 2 in
    List.init count (fun i ->
        Entry.unpack (get_u64 page (Layout.node_header_bytes + (8 * i))))
  in
  List.concat (walk_chain ~pmem ~image ~expected:0xA4 first per_page)

let parse_file ~pmem ~image mfn =
  let page = load_page ~pmem ~image ~expected:0xA3 mfn in
  let size = Int64.to_int (get_u64 page 8) in
  let mode = Bytes.get_uint16_le page 16 in
  let first_node = Hw.Frame.Mfn.of_int (Int64.to_int (get_u64 page 24)) in
  let name_len = Bytes.get_uint8 page 32 in
  let name = Bytes.sub_string page 33 name_len in
  let entries = parse_node_chain ~pmem ~image first_node in
  { name; size; mode; entries }

let check_entries ~pmem file =
  (* Re-reserve every frame referenced by an entry so the rest of boot
     cannot allocate over guest memory. *)
  List.iter
    (fun e ->
      if Hw.Pmem.is_allocated pmem e.Entry.mfn then ()
      else raise (Fail (Missing_page e.Entry.mfn)))
    file.entries

let walk_file_mfns ~pmem ~image pointer =
  let pointer_page = load_page ~pmem ~image ~expected:0xA1 pointer in
  let first_root =
    Hw.Frame.Mfn.of_int (Int64.to_int (get_u64 pointer_page 8))
  in
  let file_mfns_per_root page =
    let count = Bytes.get_uint16_le page 2 in
    List.init count (fun i ->
        Hw.Frame.Mfn.of_int (Int64.to_int (get_u64 page (16 + (8 * i)))))
  in
  List.concat
    (walk_chain ~pmem ~image ~expected:0xA2 first_root file_mfns_per_root)

let parse ~pmem ~image pointer =
  try
    let file_mfns = walk_file_mfns ~pmem ~image pointer in
    let parsed = List.map (parse_file ~pmem ~image) file_mfns in
    List.iter (check_entries ~pmem) parsed;
    Ok parsed
  with Fail err -> Error err

type file_outcome = File_ok of parsed_file | File_damaged of error

let parse_verified ~pmem ~image pointer =
  (* Damage to the pointer or root pages loses the whole table; damage
     confined to one VM's file-info or node pages only loses that VM —
     the sibling files still parse and their frames get re-reserved. *)
  try
    let file_mfns = walk_file_mfns ~pmem ~image pointer in
    let outcomes =
      List.map
        (fun mfn ->
          match
            let f = parse_file ~pmem ~image mfn in
            check_entries ~pmem f;
            f
          with
          | f -> File_ok f
          | exception Fail err -> File_damaged err)
        file_mfns
    in
    Ok outcomes
  with Fail err -> Error err

let pages_walked files =
  let nfiles = List.length files in
  1 (* pointer *) + Layout.root_pages_for ~files:nfiles + nfiles
  + List.fold_left
      (fun acc f -> acc + Layout.node_pages_for ~entries:(List.length f.entries))
      0 files
