test/test_workload.ml: Alcotest Darknet Float Hw List Mysql Profile QCheck QCheck_alcotest Redis Sched Sim Spec Spec_data Streaming Vmstate Workload
