lib/vmstate/mtrr.mli: Format Regs Sim
