type bytes_ = int

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let page_size_4k = kib 4
let page_size_2m = mib 2

type page_kind = Page_4k | Page_2m

let page_size = function Page_4k -> page_size_4k | Page_2m -> page_size_2m
let frames_per_page = function Page_4k -> 1 | Page_2m -> 512

let pages_of_bytes kind b =
  if b < 0 then invalid_arg "Units.pages_of_bytes: negative";
  let psize = page_size kind in
  (b + psize - 1) / psize

let frames_of_bytes b = pages_of_bytes Page_4k b
let to_gib_f b = float_of_int b /. float_of_int (gib 1)
let to_mib_f b = float_of_int b /. float_of_int (mib 1)
let to_kib_f b = float_of_int b /. float_of_int (kib 1)

let pp_bytes fmt b =
  if b >= gib 1 then Format.fprintf fmt "%.1fGiB" (to_gib_f b)
  else if b >= mib 1 then Format.fprintf fmt "%.1fMiB" (to_mib_f b)
  else if b >= kib 1 then Format.fprintf fmt "%.0fKiB" (to_kib_f b)
  else Format.fprintf fmt "%dB" b

let pp_page_kind fmt = function
  | Page_4k -> Format.pp_print_string fmt "4KiB"
  | Page_2m -> Format.pp_print_string fmt "2MiB"
