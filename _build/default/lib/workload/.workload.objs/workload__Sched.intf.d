lib/workload/sched.mli: Format Profile
