lib/core/costs.mli: Hw
