(** The unified HyperTP entry points: hypervisor registry, host
    provisioning and the CVE-driven transplant decision of Fig. 1(b). *)

val hypervisor_of : Hv.Kind.t -> (module Hv.Intf.S)
(** The HyperTP-compliant hypervisor repertoire (Xen and KVM). *)

val provision :
  ?seed:int64 -> name:string -> machine:Hw.Machine.t -> hv:Hv.Kind.t ->
  Vmstate.Vm.config list -> Hv.Host.t
(** Boot a host with the given hypervisor and create its VMs. *)

type response = {
  advice : Cve.Window.advice;
  inplace : Inplace.report option;
      (** present when the advice was followed with InPlaceTP *)
}

val respond_to_cve :
  ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t -> host:Hv.Host.t ->
  cve_id:string -> ?apply:bool -> unit -> response
(** The operator's one-click flow: look the CVE up, ask the policy for a
    safe alternate in the {Xen, KVM} fleet and — when [apply] (default
    true) and the advice is a transplant — run InPlaceTP.  Raises
    [Invalid_argument] on an unknown CVE id or host without a
    hypervisor. *)

val transplant_inplace :
  ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> host:Hv.Host.t ->
  target:Hv.Kind.t -> unit -> Inplace.report

val transplant_migration :
  ?rng:Sim.Rng.t -> ?fault:Fault.t -> ?retry:Migrate.retry_params ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t ->
  src:Hv.Host.t -> dst:Hv.Host.t -> ?vm_names:string list -> unit ->
  Migrate.report
