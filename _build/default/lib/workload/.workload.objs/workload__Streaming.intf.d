lib/workload/streaming.mli: Sched Sim
