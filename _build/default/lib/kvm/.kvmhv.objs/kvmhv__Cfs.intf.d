lib/kvm/cfs.mli: Format
