(** The per-CVE / per-population decision lattice.

    Generalises {!Cve.Window.advise} to a living fleet: the advice says
    whether somewhere safe exists; the policy decides whether going
    there beats waiting out the patch delay, in exposed-host-hours. *)

type kind =
  | Cost_aware
      (** transplant exactly when the realized campaign exposure
          undercuts waiting for the patch — the per-episode minimum of
          the two baselines below *)
  | Transplant_all  (** move whenever a safe alternative exists *)
  | Defer_all  (** never move; wait out every patch *)

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_kind : Format.formatter -> kind -> unit

type action =
  | Transplant of string  (** run a campaign onto this hypervisor *)
  | Wait  (** deliberately wait: patch beats the campaign, or no risk *)
  | Defer  (** exposed with no justification recorded *)

val action_to_string : action -> string
val action_of_string : string -> action option
val pp_action : Format.formatter -> action -> unit

val decide :
  kind -> advice:Cve.Window.advice -> transplant_hh:float option ->
  wait_hh:float -> action
(** [transplant_hh] is the realized from-now exposure of the candidate
    campaign (simulated by the service); [None] when no campaign was
    priced (defer-all never prices one).  Cost-aware transplants on
    strict improvement only, so a tie scores exactly the defer
    exposure and the dominance bound survives. *)

val scalar_transplant_hh :
  hosts:int -> vms_per_host:int -> concurrency:int -> tempo:float -> float
(** Simulation-free campaign-exposure estimate (expected host upgrade
    x serial batches x tempo, average host covered at half the wall).
    The coverage audit uses it to flag defers that a cheap campaign
    would have covered. *)
