(** Programmable interval timer (i8254), one per VM (Table 2: Xen PIT
    record <-> KVM PIT2 ioctl payload). *)

type channel = {
  count : int;         (** reload value, 16 bit *)
  latched_count : int;
  status : int;
  read_state : int;
  write_state : int;
  mode : int;          (** operating mode 0-5 *)
  bcd : bool;
  gate : bool;
}

type t = {
  channels : channel array; (** 3 channels *)
  speaker_data_on : bool;
}

val generate : Sim.Rng.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
