type t = {
  index : int;
  regs : Regs.t;
  lapic : Lapic.t;
  mtrr : Mtrr.t;
  xsave : Xsave.t;
}

let generate rng ~index =
  if index < 0 then invalid_arg "Vcpu.generate: negative index";
  {
    index;
    regs = Regs.generate rng;
    lapic = Lapic.generate rng ~apic_id:index;
    mtrr = Mtrr.generate rng;
    xsave = Xsave.generate rng;
  }

let equal a b =
  a.index = b.index && Regs.equal a.regs b.regs && Lapic.equal a.lapic b.lapic
  && Mtrr.equal a.mtrr b.mtrr && Xsave.equal a.xsave b.xsave

let pp fmt t =
  Format.fprintf fmt "@[vcpu%d: %a, %a, %a, %a@]" t.index Regs.pp t.regs
    Lapic.pp t.lapic Mtrr.pp t.mtrr Xsave.pp t.xsave
