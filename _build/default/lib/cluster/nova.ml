type driver = {
  driver_name : string;
  suspend : Hv.Host.t -> string -> unit;
  resume : Hv.Host.t -> string -> unit;
  live_migration :
    src:Hv.Host.t -> dst:Hv.Host.t -> vm:string -> Hypertp.Migrate.report;
  host_live_upgrade :
    Hv.Host.t -> target:Hv.Kind.t -> Hypertp.Inplace.report;
}

let libvirt_driver =
  {
    driver_name = "libvirt";
    suspend = Hv.Host.pause_vm;
    resume = Hv.Host.resume_vm;
    live_migration =
      (fun ~src ~dst ~vm -> Hypertp.Migrate.run ~src ~dst ~vm_names:[ vm ] ());
    host_live_upgrade =
      (fun host ~target -> Hypertp.Api.transplant_inplace ~host ~target ());
  }

type t = {
  driver : driver;
  mutable host_list : Hv.Host.t list;
  (* Nova's database: instance -> host name. *)
  db : (string, string) Hashtbl.t;
}

let create ?(driver = libvirt_driver) () =
  { driver; host_list = []; db = Hashtbl.create 64 }

let add_host t host =
  if
    List.exists
      (fun h -> String.equal h.Hv.Host.host_name host.Hv.Host.host_name)
      t.host_list
  then invalid_arg "Nova.add_host: duplicate host";
  t.host_list <- t.host_list @ [ host ];
  List.iter
    (fun vm -> Hashtbl.replace t.db vm host.Hv.Host.host_name)
    (Hv.Host.vm_names host)

let hosts t = t.host_list
let host_of_vm t vm = Hashtbl.find_opt t.db vm

let instances t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun vm host acc -> (vm, host) :: acc) t.db [])

let db_consistent t =
  let real = Hashtbl.create 64 in
  List.iter
    (fun host ->
      List.iter
        (fun vm -> Hashtbl.replace real vm host.Hv.Host.host_name)
        (Hv.Host.vm_names host))
    t.host_list;
  Hashtbl.length real = Hashtbl.length t.db
  && Hashtbl.fold
       (fun vm host acc ->
         acc && Hashtbl.find_opt real vm = Some host)
       t.db true

let find_host t name =
  match
    List.find_opt
      (fun h -> String.equal h.Hv.Host.host_name name)
      t.host_list
  with
  | Some h -> h
  | None -> invalid_arg ("Nova: unknown host " ^ name)

type upgrade_report = {
  host : string;
  migrated_away : (string * string) list;
  inplace : Hypertp.Inplace.report option;
}

let pick_destination t ~excluding ~ram =
  let candidates =
    List.filter
      (fun h ->
        (not (String.equal h.Hv.Host.host_name excluding))
        && Hv.Host.hypervisor_kind h <> None
        &&
        let used =
          List.fold_left
            (fun acc vm -> acc + vm.Vmstate.Vm.config.ram)
            0 (Hv.Host.vms h)
        in
        h.Hv.Host.machine.Hw.Machine.ram - used - Hw.Units.gib 2 >= ram)
      t.host_list
  in
  List.fold_left
    (fun best h ->
      match best with
      | None -> Some h
      | Some b ->
        if Hv.Host.vm_count h < Hv.Host.vm_count b then Some h else best)
    None candidates

let free_ram host =
  let used =
    List.fold_left
      (fun acc vm -> acc + vm.Vmstate.Vm.config.ram)
      0 (Hv.Host.vms host)
  in
  host.Hv.Host.machine.Hw.Machine.ram - used - Hw.Units.gib 2

let compat_fraction host ~compatible =
  let vms = Hv.Host.vms host in
  match vms with
  | [] -> 1.0 (* an empty host matches any class *)
  | _ ->
    let same =
      List.length
        (List.filter
           (fun vm ->
             Bool.equal vm.Vmstate.Vm.config.inplace_compatible compatible)
           vms)
    in
    float_of_int same /. float_of_int (List.length vms)

let affinity_score t host_name =
  let host = find_host t host_name in
  Float.max
    (compat_fraction host ~compatible:true)
    (compat_fraction host ~compatible:false)

let schedule_instance t (config : Vmstate.Vm.config) =
  let candidates =
    List.filter
      (fun h ->
        Hv.Host.hypervisor_kind h <> None && free_ram h >= config.ram)
      t.host_list
  in
  if candidates = [] then
    invalid_arg "Nova.schedule_instance: no host has capacity";
  (* Rank by compatibility affinity first, then by load. *)
  let best =
    List.fold_left
      (fun best h ->
        let score =
          compat_fraction h ~compatible:config.inplace_compatible
        in
        match best with
        | None -> Some (h, score)
        | Some (bh, bscore) ->
          if
            score > bscore +. 1e-9
            || (Float.abs (score -. bscore) < 1e-9
               && Hv.Host.vm_count h < Hv.Host.vm_count bh)
          then Some (h, score)
          else best)
      None candidates
  in
  match best with
  | Some (h, _) -> h.Hv.Host.host_name
  | None -> assert false

let boot_instance t ?host (config : Vmstate.Vm.config) =
  let host_name =
    match host with Some h -> h | None -> schedule_instance t config
  in
  let h = find_host t host_name in
  ignore (Hv.Host.create_vm h config);
  Hashtbl.replace t.db config.name host_name;
  host_name

let host_live_upgrade t ~host ~target =
  let src = find_host t host in
  let vms = Hv.Host.vms src in
  let must_move =
    List.filter
      (fun vm -> not vm.Vmstate.Vm.config.inplace_compatible)
      vms
  in
  let migrated_away =
    List.map
      (fun (vm : Vmstate.Vm.t) ->
        let name = vm.Vmstate.Vm.config.name in
        match pick_destination t ~excluding:host ~ram:vm.Vmstate.Vm.config.ram with
        | None -> invalid_arg ("Nova.host_live_upgrade: nowhere to evacuate " ^ name)
        | Some dst ->
          ignore (t.driver.live_migration ~src ~dst ~vm:name);
          Hashtbl.replace t.db name dst.Hv.Host.host_name;
          (name, dst.Hv.Host.host_name))
      must_move
  in
  let inplace =
    if Hv.Host.vm_count src > 0 then
      Some (t.driver.host_live_upgrade src ~target)
    else begin
      (* Empty host: plain reboot into the new hypervisor. *)
      Hv.Host.shutdown_hypervisor src ~keep_guest_memory:false;
      Hv.Host.boot_hypervisor src (Hypertp.Api.hypervisor_of target);
      None
    end
  in
  { host; migrated_away; inplace }
