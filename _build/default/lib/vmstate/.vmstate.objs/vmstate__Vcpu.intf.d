lib/vmstate/vcpu.mli: Format Lapic Mtrr Regs Sim Xsave
