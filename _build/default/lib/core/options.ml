type t = {
  prepare_before_pause : bool;
  parallel_translation : bool;
  huge_page_pram : bool;
  early_restoration : bool;
}

let default =
  {
    prepare_before_pause = true;
    parallel_translation = true;
    huge_page_pram = true;
    early_restoration = true;
  }

let all_off =
  {
    prepare_before_pause = false;
    parallel_translation = false;
    huge_page_pram = false;
    early_restoration = false;
  }

let pp fmt t =
  let flag name v = if v then name else "no-" ^ name in
  Format.fprintf fmt "{%s %s %s %s}"
    (flag "prepare" t.prepare_before_pause)
    (flag "parallel" t.parallel_translation)
    (flag "hugepage" t.huge_page_pram)
    (flag "early-restore" t.early_restoration)
