lib/xen/hvm_records.mli: Format Vmstate
