lib/vmstate/ioapic.ml: Array Format Sim
