type t = {
  uisr : Uisr.Vm_state.t;
  (* Guest memory image: one content tag per guest page, in page
     order.  Page geometry is recoverable from the UISR. *)
  memory : int64 array;
}

let capture host name =
  let vm =
    match Hv.Host.find_vm host name with
    | Some vm -> vm
    | None -> invalid_arg ("Snapshot.capture: no VM named " ^ name)
  in
  let was_running = Vmstate.Vm.is_running vm in
  if was_running then Hv.Host.pause_vm host name;
  let uisr = Hv.Host.to_uisr host name in
  let n = Vmstate.Guest_mem.page_count vm.Vmstate.Vm.mem in
  let memory = Array.init n (Vmstate.Guest_mem.read_page vm.Vmstate.Vm.mem) in
  if was_running then Hv.Host.resume_vm host name;
  { uisr; memory }

let vm_name t = t.uisr.Uisr.Vm_state.vm_name
let source_hypervisor t = t.uisr.Uisr.Vm_state.source_hypervisor
let memory_bytes t = 8 * Array.length t.memory

open Uisr.Wire

let magic = "HTPS"

let to_bytes t =
  let w = Writer.create () in
  String.iter (fun c -> Writer.u8 w (Char.code c)) magic;
  let uisr_blob = Uisr.Codec.encode t.uisr in
  Writer.u32 w (Bytes.length uisr_blob);
  Bytes.iter (fun c -> Writer.u8 w (Char.code c)) uisr_blob;
  Writer.array w (Writer.u64 w) t.memory;
  Uisr.Wire.append_crc (Writer.contents w)

let of_bytes blob =
  match Uisr.Wire.check_crc blob with
  | Error msg -> Error ("snapshot crc: " ^ msg)
  | Ok body -> (
    let r = Reader.create body in
    try
      let m = String.init 4 (fun _ -> Char.chr (Reader.u8 r)) in
      if not (String.equal m magic) then Error "snapshot: bad magic"
      else begin
        let len = Reader.u32 r in
        let uisr_blob = Bytes.create len in
        for i = 0 to len - 1 do
          Bytes.set_uint8 uisr_blob i (Reader.u8 r)
        done;
        match Uisr.Codec.decode uisr_blob with
        | Error e -> Error (Format.asprintf "snapshot uisr: %a" Uisr.Codec.pp_error e)
        | Ok uisr ->
          let memory = Reader.array r Reader.u64 in
          if not (Reader.eof r) then Error "snapshot: trailing bytes"
          else Ok { uisr; memory }
      end
    with
    | Reader.Truncated -> Error "snapshot: truncated"
    | Reader.Bad_format e ->
      Error ("snapshot: " ^ Reader.format_error_to_string e))

let restore t host =
  let mem =
    Vmstate.Guest_mem.create ~pmem:host.Hv.Host.pmem ~rng:host.Hv.Host.rng
      ~bytes:t.uisr.Uisr.Vm_state.ram_bytes
      ~page_kind:t.uisr.Uisr.Vm_state.page_kind ()
  in
  if Vmstate.Guest_mem.page_count mem <> Array.length t.memory then begin
    Vmstate.Guest_mem.free mem;
    invalid_arg "Snapshot.restore: geometry mismatch"
  end;
  Array.iteri (fun i v -> Vmstate.Guest_mem.write_page mem i v) t.memory;
  Vmstate.Guest_mem.clear_dirty mem;
  let fixups = Hv.Host.restore_from_uisr host ~mem t.uisr in
  Hv.Host.resume_vm host (vm_name t);
  fixups
