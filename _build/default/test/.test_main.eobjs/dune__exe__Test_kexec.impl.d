test/test_kexec.ml: Alcotest Hw Kexec List Option String
