lib/hv/npt.mli: Hw
