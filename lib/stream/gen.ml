(* Synthetic multi-year CVE arrival streams.

   One Poisson-ish process per attack-surface class (the taxonomy of
   Nvd.classify), each with its own split of the seed so changing one
   class's rate never perturbs another's arrivals.  The merged stream
   is then attributed: category and affected-hypervisor drawn from a
   per-class wheel chosen to be consistent with Nvd.classify by
   construction, severity from [critical_fraction], CVSS vector from
   the Table 1 representative pools, and a patch-availability delay
   from the documented window statistics. *)

type config = {
  years : float;
  rate_per_year : float;
  class_mix : (Cve.Nvd.taxonomy * float) list;
  critical_fraction : float;
  coordinated_fraction : float;
  base_year : int;
  seed : int64;
}

(* Rates echo the Table 1 era: ~14 disclosures a year across the two
   studied codebases, dominated by the hypercall surface (section 2.1),
   with just under half critical. *)
let default =
  {
    years = 5.0;
    rate_per_year = 14.0;
    class_mix =
      [ (Cve.Nvd.Hypercall_handlers, 0.5); (Cve.Nvd.Device_emulation, 0.3);
        (Cve.Nvd.Cross_domain, 0.2) ];
    critical_fraction = 0.45;
    coordinated_fraction = 0.3;
    base_year = 2021;
    seed = 0xCEEDL;
  }

type event = {
  seq : int;
  day : float;
  cve : Cve.Nvd.timed;
  subsystems : string list;
}

let site = "Stream.Gen"

let validate c =
  let bad fmt = Hypertp_error.raise_errorf ~site fmt in
  if c.years <= 0.0 then bad "years must be positive";
  if c.rate_per_year <= 0.0 then bad "rate_per_year must be positive";
  if c.critical_fraction < 0.0 || c.critical_fraction > 1.0 then
    bad "critical_fraction outside [0, 1]";
  if c.coordinated_fraction < 0.0 || c.coordinated_fraction > 1.0 then
    bad "coordinated_fraction outside [0, 1]";
  if c.class_mix = [] then bad "class_mix is empty";
  List.iter
    (fun (_, w) -> if w < 0.0 then bad "class_mix weight is negative")
    c.class_mix;
  if List.fold_left (fun acc (_, w) -> acc +. w) 0.0 c.class_mix <= 0.0 then
    bad "class_mix weights sum to zero"

let weight_of mix tax =
  List.fold_left
    (fun acc (t, w) -> if t = tax then acc +. w else acc)
    0.0 mix

(* The attribution wheels.  Every (category, affects) pair in a class's
   wheel classifies back into that class under [Nvd.classify] — the
   generator and the Table 1 dataset can never disagree on taxonomy. *)
let wheel_of = function
  | Cve.Nvd.Hypercall_handlers ->
    [| (Cve.Nvd.Pv_mechanisms, Cve.Nvd.Xen_only, "event_channels");
       (Cve.Nvd.Resource_mgmt, Cve.Nvd.Xen_only, "scheduler");
       (Cve.Nvd.Ioctl, Cve.Nvd.Kvm_only, "kvm_ioctl");
       (Cve.Nvd.Resource_mgmt, Cve.Nvd.Kvm_only, "memory_accounting") |]
  | Cve.Nvd.Device_emulation ->
    [| (Cve.Nvd.Qemu, Cve.Nvd.Xen_only, "qemu_device");
       (Cve.Nvd.Qemu, Cve.Nvd.Kvm_only, "virtio");
       (Cve.Nvd.Hardware_handling, Cve.Nvd.Kvm_only, "vtx_state");
       (Cve.Nvd.Hardware_handling, Cve.Nvd.Xen_only, "iommu") |]
  | Cve.Nvd.Cross_domain ->
    [| (Cve.Nvd.Toolstack, Cve.Nvd.Xen_only, "libxl");
       (Cve.Nvd.Qemu, Cve.Nvd.Both, "shared_fdc");
       (Cve.Nvd.Toolstack, Cve.Nvd.Kvm_only, "libvirt_glue");
       (Cve.Nvd.Qemu, Cve.Nvd.Both, "shared_net_backend") |]

let subsystem_of tax slot =
  let surface = Cve.Nvd.taxonomy_to_string tax in
  [ surface; slot ]

(* How many inter-arrival gaps a disclosure burst compresses, and by
   how much: an audit wave lands ~6 follow-on advisories in ~1/8 the
   usual spacing (the VENOM week). *)
let burst_len = 6
let burst_compression = 8.0

let generate ?fault config =
  validate config;
  let root = Sim.Rng.create config.seed in
  let attr_rng = Sim.Rng.split root in
  let horizon = config.years *. 365.0 in
  let total_w =
    List.fold_left (fun acc (_, w) -> acc +. w) 0.0 config.class_mix
  in
  (* Per-class exponential arrivals, each on its own split stream.
     Classes draw in [all_taxonomies] order so adding a class at the
     end never reshuffles earlier streams. *)
  let per_class =
    List.filter_map
      (fun tax ->
        let w = weight_of config.class_mix tax in
        if w <= 0.0 then None
        else begin
          let rng = Sim.Rng.split root in
          let rate_per_day = config.rate_per_year *. w /. total_w /. 365.0 in
          let arrivals = ref [] in
          let day = ref 0.0 in
          let continue = ref true in
          while !continue do
            let u = Sim.Rng.float rng 1.0 in
            let gap = -.log (1.0 -. u) /. rate_per_day in
            day := !day +. gap;
            if !day > horizon then continue := false
            else arrivals := (!day, tax) :: !arrivals
          done;
          Some (List.rev !arrivals)
        end)
      Cve.Nvd.all_taxonomies
  in
  let tax_order t =
    let rec idx i = function
      | [] -> i
      | x :: tl -> if x = t then i else idx (i + 1) tl
    in
    idx 0 Cve.Nvd.all_taxonomies
  in
  let merged =
    List.sort
      (fun (d1, t1) (d2, t2) ->
        match Float.compare d1 d2 with
        | 0 -> Int.compare (tax_order t1) (tax_order t2)
        | c -> c)
      (List.concat per_class)
  in
  (* Burst faults compress the next few merged gaps: the fault plan is
     consulted once per arrival, so seeded plans line up with [seq]. *)
  let events = ref [] in
  let seq = ref 0 in
  let prev_in = ref 0.0 in
  let prev_out = ref 0.0 in
  let burst_left = ref 0 in
  List.iter
    (fun (day, tax) ->
      let fired =
        match fault with
        | Some plan -> Fault.fire plan Fault.Cve_burst
        | None -> false
      in
      let gap = day -. !prev_in in
      prev_in := day;
      let gap =
        if !burst_left > 0 then begin
          decr burst_left;
          gap /. burst_compression
        end
        else gap
      in
      if fired then burst_left := burst_len;
      let out_day = !prev_out +. gap in
      prev_out := out_day;
      if out_day <= horizon then begin
        let wheel = wheel_of tax in
        let category, affects, slot =
          wheel.(Sim.Rng.int attr_rng (Array.length wheel))
        in
        let severity =
          if Sim.Rng.float attr_rng 1.0 < config.critical_fraction then
            Cve.Cvss.Critical
          else Cve.Cvss.Medium
        in
        let delay =
          Cve.Window.sample_patch_delay ~rng:attr_rng
            ~coordinated_fraction:config.coordinated_fraction ()
        in
        let year = config.base_year + int_of_float (out_day /. 365.0) in
        let id = Printf.sprintf "CVE-%d-5%03d" year (!seq mod 1000) in
        let body =
          {
            Cve.Nvd.id;
            year;
            affects;
            severity;
            category;
            vector = Cve.Nvd.vector_of severity !seq;
            window_days = None;
          }
        in
        let cve = Cve.Nvd.timed ~patch_delay_days:delay body in
        events :=
          { seq = !seq; day = out_day; cve; subsystems = subsystem_of tax slot }
          :: !events;
        incr seq
      end)
    merged;
  List.rev !events

let affects_to_string = function
  | Cve.Nvd.Xen_only -> "xen"
  | Cve.Nvd.Kvm_only -> "kvm"
  | Cve.Nvd.Both -> "both"

let severity_to_string = function
  | Cve.Cvss.Low -> "low"
  | Cve.Cvss.Medium -> "medium"
  | Cve.Cvss.Critical -> "critical"

let event_to_string e =
  Printf.sprintf "%d %.6f %s %s %s %s %.6f %s" e.seq e.day e.cve.Cve.Nvd.body.id
    (severity_to_string e.cve.Cve.Nvd.body.severity)
    (Cve.Nvd.taxonomy_to_string e.cve.Cve.Nvd.tax)
    (affects_to_string e.cve.Cve.Nvd.body.affects)
    e.cve.Cve.Nvd.patch_delay_days
    (String.concat "," e.subsystems)

let pp_event fmt e = Format.pp_print_string fmt (event_to_string e)
