lib/uisr/fixup.ml: Format
