lib/vmstate/lapic.ml: Array Bool Format Int32 Int64 Sim
