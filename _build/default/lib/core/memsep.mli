(** Memory-separation accounting (Fig. 2): classify a host's RAM into
    the four categories that decide what a transplant must translate,
    keep, rebuild or discard. *)

type report = {
  guest_state_bytes : Hw.Units.bytes_;
      (** guest address spaces — kept untouched, in place *)
  vmi_state_bytes : Hw.Units.bytes_;
      (** NPTs, vCPU contexts, device state — translated via UISR *)
  management_state_bytes : Hw.Units.bytes_;
      (** scheduler queues, xenstore/process tables — rebuilt *)
  hv_state_bytes : Hw.Units.bytes_;
      (** hypervisor heap — reinitialised by the micro-reboot *)
}

val of_host : Hv.Host.t -> report
(** Raises [Invalid_argument] if no hypervisor is running. *)

val translated_fraction : report -> float
(** Share of classified memory HyperTP actually has to translate — the
    design's headline: tiny, because Guest State dominates. *)

val pp : Format.formatter -> report -> unit
