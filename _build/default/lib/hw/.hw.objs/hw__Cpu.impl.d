lib/hw/cpu.ml: Format Stdlib
