examples/fleet_timeline.ml: Cluster Cve Format List Printf Sim
