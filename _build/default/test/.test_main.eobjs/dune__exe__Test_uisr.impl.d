test/test_uisr.ml: Alcotest Array Bytes Char Codec Fixup Format Gen Hw List QCheck QCheck_alcotest Result Sim Uisr Vm_state Vmstate Wire
