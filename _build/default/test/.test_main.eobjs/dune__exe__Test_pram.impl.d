test/test_pram.ml: Alcotest Format Gen Hashtbl Hw List Pram Printf QCheck QCheck_alcotest Result Sim Uisr Vmstate
