(** Deterministic pristine inputs for the corruption fuzzer. *)

val vm_state :
  ?vcpus:int -> ?ram_mib:int -> seed:int64 -> unit -> Uisr.Vm_state.t
(** A captured VM state that {!Uisr.Codec.decode_verified} classifies
    as [Intact].  Equal seeds give equal states. *)

val blob : ?vcpus:int -> ?ram_mib:int -> seed:int64 -> unit -> bytes
(** [Uisr.Codec.encode] of {!vm_state}. *)
