lib/cluster/nova.mli: Hv Hypertp Vmstate
