(* Deterministic text exporters: Chrome trace_event JSON (loadable in
   Perfetto / chrome://tracing) and an OpenMetrics-style dump.  Both
   derive their output order from recording order and sorted registry
   order respectively, never from hashing or wall time, so a seeded run
   exports byte-identical artifacts — the property the golden tests
   pin. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* trace_event timestamps are microseconds; virtual time is integer
   nanoseconds, so three decimals render it exactly. *)
let us_of ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.0)

let args_json attrs =
  match attrs with
  | [] -> ""
  | attrs ->
    let fields =
      List.map
        (fun (k, v) ->
          Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
        attrs
    in
    Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

let chrome_trace ?(process = "hypertp") tracer =
  let spans = Tracer.spans tracer in
  (* Track -> tid, in order of first appearance. *)
  let tracks = ref [] in
  let tid_of track =
    match List.assoc_opt track !tracks with
    | Some tid -> tid
    | None ->
      let tid = List.length !tracks + 1 in
      tracks := !tracks @ [ (track, tid) ];
      tid
  in
  List.iter (fun s -> ignore (tid_of (Span.track s))) spans;
  let entries = ref [] in
  (* Sort key: (time, span id, rank-within-span, event index). *)
  let add ~at ~sid ~rank ~idx line = entries := ((at, sid, rank, idx), line) :: !entries in
  List.iter
    (fun s ->
      let tid = tid_of (Span.track s) in
      let sid = Span.id s in
      let start_ns = Sim.Time.to_ns (Span.start s) in
      let attrs = Span.attrs s in
      (match Span.kind s with
      | Span.Instant ->
        add ~at:start_ns ~sid ~rank:0 ~idx:0
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
              \"ts\":%s,\"pid\":1,\"tid\":%d%s}"
             (json_escape (Span.name s))
             (us_of start_ns) tid (args_json attrs))
      | Span.Interval ->
        let dur_ns, attrs =
          match Span.stop s with
          | Some stop -> (Sim.Time.to_ns stop - start_ns, attrs)
          | None -> (0, attrs @ [ ("unfinished", "true") ])
        in
        add ~at:start_ns ~sid ~rank:0 ~idx:0
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%s,\
              \"dur\":%s,\"pid\":1,\"tid\":%d%s}"
             (json_escape (Span.name s))
             (us_of start_ns) (us_of dur_ns) tid (args_json attrs)));
      List.iteri
        (fun idx (at, label) ->
          add ~at:(Sim.Time.to_ns at) ~sid ~rank:1 ~idx
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                \"ts\":%s,\"pid\":1,\"tid\":%d%s}"
               (json_escape label)
               (us_of (Sim.Time.to_ns at))
               tid
               (args_json [ ("span", Span.name s) ])))
        (Span.events s))
    spans;
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) !entries in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
        \"args\":{\"name\":\"%s\"}}"
       (json_escape process));
  List.iter
    (fun (track, tid) ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"%s\"}}"
           tid (json_escape track)))
    !tracks;
  List.iter
    (fun (_, line) ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    entries;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* --- OpenMetrics --- *)

let om_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let om_labels = function
  | [] -> ""
  | labels ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (om_escape v))
            labels))

let om_bound b =
  if b = Float.infinity then "+Inf" else om_value b

let open_metrics metrics =
  let buf = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun i ->
      let name = Metrics.name i in
      if name <> !last_header then begin
        last_header := name;
        (match Metrics.help i with
        | "" -> ()
        | help ->
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name (om_escape help)));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name
             (match Metrics.instrument_kind i with
             | Metrics.Counter -> "counter"
             | Metrics.Gauge -> "gauge"
             | Metrics.Histogram -> "histogram"))
      end;
      let labels = Metrics.instrument_labels i in
      match Metrics.instrument_kind i with
      | Metrics.Counter | Metrics.Gauge ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (om_labels labels)
             (om_value (Metrics.value i)))
      | Metrics.Histogram ->
        let h = i in
        let bounds = Metrics.bucket_bounds h @ [ Float.infinity ] in
        let counts = Metrics.bucket_counts h in
        let cumulative = ref 0 in
        List.iter2
          (fun bound count ->
            cumulative := !cumulative + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (om_labels (labels @ [ ("le", om_bound bound) ]))
                 !cumulative))
          bounds counts;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (om_labels labels)
             (om_value (Metrics.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (om_labels labels)
             (Metrics.observations h)))
    (Metrics.instruments metrics);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
