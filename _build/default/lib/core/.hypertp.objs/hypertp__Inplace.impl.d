lib/core/inplace.ml: Array Bytes Costs Format Hashtbl Hv Hw Int64 Kexec List Log Option Options Phases Pram Sim Stdlib String Uisr Vmstate
