(** Xen grant tables: controlled sharing of guest frames with other
    domains (the data path under every PV device ring).

    A grant entry names a guest frame and the domain allowed to map it;
    backends map granted frames to move network/disk payloads without
    copies.  Grant state is VM_i State — it references Guest State (the
    granted frames survive transplant in place) but the table itself is
    Xen-specific and is rebuilt by the device rescan on the target. *)

type grant_ref = int

type entry = {
  frame : Hw.Frame.Gfn.t;
  granted_to : int;      (** domid of the backend *)
  readonly : bool;
  mapped : bool;         (** currently mapped by the grantee *)
}

type t

val create : unit -> t

val grant : t -> frame:Hw.Frame.Gfn.t -> granted_to:int -> readonly:bool -> grant_ref
val entry : t -> grant_ref -> entry option

val map : t -> grant_ref -> unit
(** The backend maps the granted frame.  Raises on unknown refs or
    double maps. *)

val unmap : t -> grant_ref -> unit

val revoke : t -> grant_ref -> unit
(** Raises [Invalid_argument] if the grant is still mapped — the
    classic source of use-after-grant bugs this module forbids. *)

val active : t -> int
val mapped_count : t -> int
val granted_frames : t -> Hw.Frame.Gfn.t list
val state_bytes : t -> int

val revoke_all_unmapped : t -> int
val force_teardown : t -> int
(** Unmap and revoke everything (device unplug path); returns the number
    of entries removed. *)
