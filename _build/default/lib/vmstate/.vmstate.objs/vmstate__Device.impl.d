lib/vmstate/device.ml: Array Format Int64 Sim Virtqueue
