(** InPlaceTP phase breakdown (the bars of Fig. 6/7/10).

    PRAM construction happens before VMs are paused, so downtime is
    Translation + Reboot + Restoration (+ Recovery when faults were
    injected); the Network phase (NIC re-initialisation) runs in
    parallel with restoration and only matters to network-dependent
    applications, so it is reported separately (section 5.2). *)

type t = {
  pram : Sim.Time.t;
  translation : Sim.Time.t;
  reboot : Sim.Time.t;        (** kernel boot + sequential PRAM parse *)
  restoration : Sim.Time.t;
  recovery : Sim.Time.t;
      (** post-point-of-no-return fault handling: restore retries,
          extra management rebuilds, quarantine triage, full-reboot
          fallback.  Zero on a fault-free run. *)
  network : Sim.Time.t;
}

val downtime : t -> Sim.Time.t
(** Translation + Reboot + Restoration + Recovery. *)

val total : t -> Sim.Time.t
(** PRAM + downtime (kexec staging is ahead-of-time and excluded). *)

val downtime_with_network : t -> Sim.Time.t
(** Downtime as seen by a network-dependent application: the network
    comes up in parallel with restoration, so the longer of the two
    tails applies. *)

val zero : t

val span_prefix : string
(** ["phase:"] — the engines open one top-level span per phase named
    [span_prefix ^ field]; {!of_trace} recognises them by this name. *)

val of_trace : Obs.Span.t list -> t
(** Re-derive the phase breakdown from a recorded trace: per field, the
    summed duration of every finished span named [span_prefix ^ field].
    For any single engine run the result reconciles {e exactly} (to the
    nanosecond tick) with the hand-accumulated record in the report —
    the property test that keeps the trace and the report from
    drifting apart.  Open spans contribute nothing. *)

val pp : Format.formatter -> t -> unit
val pp_row : Format.formatter -> t -> unit
(** Tab-separated numeric row (seconds) for the bench harness. *)
