type t = { host : Hv.Host.t }

exception Not_xen of string

let attach host = { host }

let xen_exn t =
  match Hv.Host.hypervisor_kind t.host with
  | Some Hv.Kind.Xen -> (
    match Hv.Host.running_exn t.host with
    | Hv.Host.Packed ((module H), _, _) as packed ->
      ignore (module H : Hv.Intf.S);
      packed)
  | Some other -> raise (Not_xen (Hv.Kind.to_string other))
  | None -> raise (Not_xen "(nothing)")

let list t =
  match xen_exn t with
  | Hv.Host.Packed (_, _, _) ->
    (* Go through the host's generic view but decorate with domids from
       xenstore, which only exists under Xen. *)
    List.sort
      (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b)
      (List.mapi
         (fun i vm ->
           ( i + 1,
             vm.Vmstate.Vm.config.name,
             vm.Vmstate.Vm.config.vcpus,
             vm.Vmstate.Vm.config.ram / (1024 * 1024) ))
         (Hv.Host.vms t.host))

let pause t name =
  ignore (xen_exn t);
  Hv.Host.pause_vm t.host name

let unpause t name =
  ignore (xen_exn t);
  Hv.Host.resume_vm t.host name

let info t =
  ignore (xen_exn t);
  Format.asprintf "xen_version: %s@.host: %a" Xen.version Hw.Machine.pp
    t.host.Hv.Host.machine

let domid t name =
  match list t |> List.find_opt (fun (_, n, _, _) -> String.equal n name) with
  | Some (id, _, _, _) -> id
  | None -> invalid_arg ("xl: unknown domain " ^ name)
