lib/core/migrate.ml: Bytes Format Hashtbl Hv Hw Int64 List Log Migration Option Sim String Uisr Vmstate Workload
