type thread_ref = { vm_name : string; vcpu_index : int }

type t = {
  mutable current : thread_ref list;
  mutable next : thread_ref list;
}

let create () = { current = []; next = [] }

let enqueue_vm t ~vm_name ~vcpus =
  for vcpu_index = 0 to vcpus - 1 do
    t.next <- t.next @ [ { vm_name; vcpu_index } ]
  done

let dequeue_vm t ~vm_name =
  let keep th = not (String.equal th.vm_name vm_name) in
  t.current <- List.filter keep t.current;
  t.next <- List.filter keep t.next

let runnable t = List.length t.current + List.length t.next

let pick_next t =
  (match t.current with
  | [] ->
    t.current <- t.next;
    t.next <- []
  | _ :: _ -> ());
  match t.current with
  | [] -> None
  | th :: rest ->
    t.current <- rest;
    t.next <- t.next @ [ th ];
    Some th

let rebuild t vms =
  t.current <- [];
  t.next <- [];
  List.iter (fun (vm_name, vcpus) -> enqueue_vm t ~vm_name ~vcpus) vms

let consistent t vms =
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (vm_name, vcpus) ->
      for i = 0 to vcpus - 1 do
        Hashtbl.replace expected (vm_name, i) 0
      done)
    vms;
  let ok = ref true in
  List.iter
    (fun th ->
      let key = (th.vm_name, th.vcpu_index) in
      match Hashtbl.find_opt expected key with
      | None -> ok := false
      | Some n -> Hashtbl.replace expected key (n + 1))
    (t.current @ t.next);
  Hashtbl.iter (fun _ n -> if n <> 1 then ok := false) expected;
  !ok

let state_bytes t = 128 + (runnable t * 64)

let pp fmt t =
  Format.fprintf fmt "ule[current %d, next %d]" (List.length t.current)
    (List.length t.next)
