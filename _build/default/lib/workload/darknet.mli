(** Darknet MNIST training model (Table 6).

    Training runs a fixed number of sequential iterations; an iteration
    caught by an InPlaceTP pause stretches by the full downtime, one
    under pre-copy stretches by the migration slowdown factor. *)

type result = {
  durations_s : float list; (** per-iteration wall-clock durations *)
  mean_s : float;
  longest_s : float;
  total_s : float;
}

val train :
  rng:Sim.Rng.t -> sched:Sched.t -> iterations:int -> result
(** Raises [Invalid_argument] on a non-positive iteration count. *)
