lib/kvm/kvm.ml: Array Bytes Cfs Format Hv Hw Ioctl_stream Kvmtool List Sim String Uisr Vmstate Workload
