lib/uisr/codec.mli: Format Vm_state
