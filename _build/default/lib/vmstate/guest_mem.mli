(** A guest physical address space backed by host memory.

    This is the {e Guest State} of the paper's memory-separation
    principle: hypervisor-independent, kept untouched and in place during
    InPlaceTP, copied page-by-page during MigrationTP.  Pages are 4 KiB
    or 2 MiB (the paper configures guests with 2 MiB huge pages); each
    guest page is backed by a contiguous, suitably aligned host extent,
    carries a content tag (written through to {!Hw.Pmem}) and a dirty
    bit driving pre-copy migration. *)

type t

val create :
  pmem:Hw.Pmem.t -> rng:Sim.Rng.t -> bytes:Hw.Units.bytes_ ->
  page_kind:Hw.Units.page_kind -> unit -> t
(** Allocate and populate the address space with deterministic initial
    content.  Raises {!Hw.Pmem.Out_of_memory} if the host is full. *)

val page_kind : t -> Hw.Units.page_kind
val page_count : t -> int
val bytes : t -> Hw.Units.bytes_
val pmem : t -> Hw.Pmem.t

val gfn_of_page : t -> int -> Hw.Frame.Gfn.t
(** Guest frame number (4 KiB granularity) of guest page [i]. *)

val mfn_of_page : t -> int -> Hw.Frame.Mfn.t
(** Host backing frame of guest page [i]. *)

val write_page : t -> int -> int64 -> unit
(** Guest stores to page [i]: updates the content tag (write-through to
    host memory) and sets the dirty bit. *)

val read_page : t -> int -> int64

val touch_random : t -> Sim.Rng.t -> int -> unit
(** Dirty [n] pseudo-random pages (workload activity). *)

val dirty_count : t -> int
val dirty_pages : t -> int list
(** Indices of dirty pages, ascending. *)

val clear_dirty : t -> unit
val clear_dirty_page : t -> int -> unit
val set_all_dirty : t -> unit

val extents : t -> (Hw.Frame.Gfn.t * Hw.Frame.Mfn.t * int) list
(** Maximal runs of guest-contiguous, host-contiguous frames:
    (guest start, host start, frames).  This is what PRAM page entries
    record. *)

val checksum : t -> int64
(** Order-sensitive digest of all page content tags. *)

val verify_backing : t -> (int * Hw.Frame.Mfn.t) list
(** Pages whose host frame content no longer matches the guest's view —
    non-empty means Guest State was clobbered.  Checks the tag stored at
    each page's first backing frame. *)

val free : t -> unit
(** Return the backing extents to the host allocator. *)
