type system = Xen_only | Kvm_only | Both

type category =
  | Pv_mechanisms
  | Resource_mgmt
  | Hardware_handling
  | Toolstack
  | Qemu
  | Ioctl

type record = {
  id : string;
  year : int;
  affects : system;
  severity : Cvss.severity;
  category : category;
  vector : Cvss.vector;
  window_days : int option;
}

(* Representative CVSS v2 vectors whose base scores land in the right
   band (critical >= 7.0, 4.0 <= medium < 7.0). *)
let critical_vectors =
  [
    "AV:N/AC:L/Au:N/C:C/I:C/A:C" (* 10.0 *);
    "AV:N/AC:M/Au:N/C:C/I:C/A:C" (* 9.3 *);
    "AV:L/AC:L/Au:N/C:C/I:C/A:C" (* 7.2 *);
    "AV:N/AC:L/Au:S/C:C/I:C/A:C" (* 9.0 *);
  ]

let medium_vectors =
  [
    "AV:N/AC:L/Au:N/C:N/I:N/A:P" (* 5.0 *);
    "AV:L/AC:L/Au:N/C:P/I:P/A:P" (* 4.6 *);
    "AV:N/AC:M/Au:S/C:P/I:N/A:P" (* 4.9 *);
    "AV:L/AC:L/Au:N/C:N/I:N/A:C" (* 4.9 *);
  ]

let vector_of severity i =
  let pool =
    match severity with
    | Cvss.Critical -> critical_vectors
    | Cvss.Medium | Cvss.Low -> medium_vectors
  in
  match Cvss.parse (List.nth pool (i mod List.length pool)) with
  | Ok v -> v
  | Error msg -> invalid_arg ("Nvd: bad embedded vector: " ^ msg)

(* Category wheels reproducing the section 2.1 proportions. *)
let xen_critical_categories =
  (* 55 total: 21 PV (38.2%), 16 resource (29.1%), 8 hardware (14.5%),
     4 toolstack (7.3%), 6 QEMU (10.9%). *)
  List.concat
    [
      List.init 21 (fun _ -> Pv_mechanisms);
      List.init 16 (fun _ -> Resource_mgmt);
      List.init 8 (fun _ -> Hardware_handling);
      List.init 4 (fun _ -> Toolstack);
      List.init 6 (fun _ -> Qemu);
    ]

let kvm_critical_categories =
  (* 13 total: 4 ioctl, 5 hardware, 3 QEMU, 1 resource. *)
  List.concat
    [
      List.init 4 (fun _ -> Ioctl);
      List.init 5 (fun _ -> Hardware_handling);
      List.init 3 (fun _ -> Qemu);
      List.init 1 (fun _ -> Resource_mgmt);
    ]

let xen_medium_category i =
  match i mod 5 with
  | 0 | 1 -> Pv_mechanisms
  | 2 -> Resource_mgmt
  | 3 -> Hardware_handling
  | _ -> Qemu

let kvm_medium_category i =
  match i mod 4 with
  | 0 | 1 -> Ioctl
  | 2 -> Hardware_handling
  | _ -> Qemu

(* Table 1: year, xen (crit, med), kvm (crit, med), common (crit, med).
   The per-hypervisor columns include the common flaws. *)
let table1_counts =
  [
    (2013, (3, 38), (3, 21), (0, 0));
    (2014, (4, 27), (1, 12), (0, 0));
    (2015, (11, 20), (1, 4), (1, 2));
    (2016, (6, 12), (3, 3), (0, 0));
    (2017, (17, 38), (1, 7), (0, 0));
    (2018, (7, 21), (2, 5), (0, 0));
    (2019, (7, 15), (2, 4), (0, 0));
  ]

(* The 24 KVM vulnerability windows reconstructed from Red Hat's tracker
   (section 2.2): average 71 days, 62.5% above 60 days, max 180 (CVE-
   2017-12188), min 8 (CVE-2013-0311). *)
let kvm_windows =
  [ 8; 14; 22; 30; 38; 45; 52; 58; 59;
    61; 62; 62; 66; 70; 75; 82; 85; 85; 90; 100; 100; 120; 140; 180 ]

(* The min (CVE-2013-0311) and max (CVE-2017-12188) anchors are assigned
   explicitly; the remaining 22 slots go to other KVM records. *)
let kvm_window_slots =
  List.filter (fun w -> w <> 8 && w <> 180) kvm_windows

let real_common_records =
  [
    (* VENOM: QEMU virtual floppy controller buffer overflow — the one
       common critical flaw of the studied period. *)
    {
      id = "CVE-2015-3456";
      year = 2015;
      affects = Both;
      severity = Cvss.Critical;
      category = Qemu;
      vector = vector_of Cvss.Critical 2;
      window_days = None;
    };
    (* The two common medium DoS flaws: incomplete handling of the
       Alignment Check and Debug exceptions. *)
    {
      id = "CVE-2015-8104";
      year = 2015;
      affects = Both;
      severity = Cvss.Medium;
      category = Hardware_handling;
      vector = vector_of Cvss.Medium 3;
      window_days = None;
    };
    {
      id = "CVE-2015-5307";
      year = 2015;
      affects = Both;
      severity = Cvss.Medium;
      category = Hardware_handling;
      vector = vector_of Cvss.Medium 3;
      window_days = None;
    };
  ]

let all =
  let xen_crit_cat = Array.of_list xen_critical_categories in
  let kvm_crit_cat = Array.of_list kvm_critical_categories in
  let xen_crit_i = ref 0 and kvm_crit_i = ref 0 in
  let kvm_win = Array.of_list kvm_window_slots in
  let kvm_win_i = ref 0 in
  let next_kvm_window () =
    if !kvm_win_i < Array.length kvm_win then begin
      let w = kvm_win.(!kvm_win_i) in
      incr kvm_win_i;
      Some w
    end
    else None
  in
  let records = ref [] in
  let emit r = records := r :: !records in
  List.iter
    (fun (year, (xc, xm), (kc, km), (cc, cm)) ->
      (* Common records for this year come from the real list. *)
      let commons =
        List.filter (fun r -> r.year = year) real_common_records
      in
      assert (
        List.length (List.filter (fun r -> r.severity = Cvss.Critical) commons)
        = cc);
      assert (
        List.length (List.filter (fun r -> r.severity = Cvss.Medium) commons)
        = cm);
      List.iter emit commons;
      (* Xen-only records. *)
      for i = 0 to xc - cc - 1 do
        let cat = xen_crit_cat.(!xen_crit_i mod Array.length xen_crit_cat) in
        incr xen_crit_i;
        let window_days =
          (* Timeline anchor: the CVE-2016-6258 patch shipped 7 days
             after discovery; other Xen reporters estimated 30-60 days. *)
          if year = 2016 && i = 0 then Some 7
          else Some (30 + (((year * 7) + i) mod 31))
        in
        let id =
          if year = 2016 && i = 0 then "CVE-2016-6258"
          else Printf.sprintf "CVE-%d-9%03d" year i
        in
        emit
          { id; year; affects = Xen_only; severity = Cvss.Critical;
            category = cat; vector = vector_of Cvss.Critical i; window_days }
      done;
      for i = 0 to xm - cm - 1 do
        emit
          {
            id = Printf.sprintf "CVE-%d-9%03d" year (100 + i);
            year;
            affects = Xen_only;
            severity = Cvss.Medium;
            category = xen_medium_category i;
            vector = vector_of Cvss.Medium i;
            window_days = None;
          }
      done;
      (* KVM-only records; windows drawn from the Red Hat set. *)
      for i = 0 to kc - cc - 1 do
        let cat = kvm_crit_cat.(!kvm_crit_i mod Array.length kvm_crit_cat) in
        incr kvm_crit_i;
        let id =
          if year = 2013 && i = 0 then "CVE-2013-0311"
          else if year = 2017 && i = 0 then "CVE-2017-12188"
          else Printf.sprintf "CVE-%d-9%03d" year (200 + i)
        in
        let window_days =
          if String.equal id "CVE-2013-0311" then Some 8
          else if String.equal id "CVE-2017-12188" then Some 180
          else next_kvm_window ()
        in
        emit
          { id; year; affects = Kvm_only; severity = Cvss.Critical;
            category = cat; vector = vector_of Cvss.Critical i; window_days }
      done;
      for i = 0 to km - cm - 1 do
        emit
          {
            id = Printf.sprintf "CVE-%d-9%03d" year (300 + i);
            year;
            affects = Kvm_only;
            severity = Cvss.Medium;
            category = kvm_medium_category i;
            vector = vector_of Cvss.Medium i;
            window_days = next_kvm_window ();
          }
      done)
    table1_counts;
  List.rev !records

(* Reported to hardware vendors on 2017-06-01, publicly disclosed
   2018-01-03: a 216-day coordination window (section 2.1). *)
let hardware_level =
  List.map
    (fun id ->
      {
        id;
        year = 2017;
        affects = Both;
        severity = Cvss.Critical;
        category = Hardware_handling;
        vector = vector_of Cvss.Critical 2;
        window_days = Some 216;
      })
    [ "CVE-2017-5753" (* Spectre v1 *); "CVE-2017-5715" (* Spectre v2 *);
      "CVE-2017-5754" (* Meltdown *) ]

let is_hardware_level r =
  List.exists (fun h -> String.equal h.id r.id) hardware_level

(* Attack-surface taxonomy (the hypercall-handler and cross-domain
   studies in PAPERS.md).  Derived from the record itself so the Table 1
   dataset and synthetic streams classify identically. *)
type taxonomy = Hypercall_handlers | Device_emulation | Cross_domain

let classify r =
  if is_hardware_level r then Cross_domain
  else
    match r.category with
    | Pv_mechanisms | Ioctl | Resource_mgmt -> Hypercall_handlers
    | Toolstack -> Cross_domain
    | Qemu -> ( match r.affects with Both -> Cross_domain | _ -> Device_emulation)
    | Hardware_handling -> Device_emulation

let taxonomy_to_string = function
  | Hypercall_handlers -> "hypercall"
  | Device_emulation -> "device"
  | Cross_domain -> "cross-domain"

let taxonomy_of_string = function
  | "hypercall" -> Some Hypercall_handlers
  | "device" -> Some Device_emulation
  | "cross-domain" -> Some Cross_domain
  | _ -> None

let all_taxonomies = [ Hypercall_handlers; Device_emulation; Cross_domain ]

let pp_taxonomy fmt t = Format.pp_print_string fmt (taxonomy_to_string t)

type timed = {
  body : record;
  patch_delay_days : float;
  tax : taxonomy;
}

let timed ?patch_delay_days r =
  let patch_delay_days =
    match patch_delay_days with
    | Some d when d >= 0.0 -> d
    | Some _ -> invalid_arg "Nvd.timed: negative patch delay"
    | None -> (
      match r.window_days with
      | Some w -> float_of_int w
      | None -> 30.0 (* the Xen reporters' 30-60 day estimate, low end *))
  in
  { body = r; patch_delay_days; tax = classify r }

let affects_xen r = match r.affects with Xen_only | Both -> true | Kvm_only -> false
let affects_kvm r = match r.affects with Kvm_only | Both -> true | Xen_only -> false

type table1_row = {
  row_year : int;
  xen_crit : int;
  xen_med : int;
  kvm_crit : int;
  kvm_med : int;
  common_crit : int;
  common_med : int;
}

let table1 () =
  List.map
    (fun (year, _, _, _) ->
      let of_year = List.filter (fun r -> r.year = year) all in
      let count p = List.length (List.filter p of_year) in
      {
        row_year = year;
        xen_crit = count (fun r -> affects_xen r && r.severity = Cvss.Critical);
        xen_med = count (fun r -> affects_xen r && r.severity = Cvss.Medium);
        kvm_crit = count (fun r -> affects_kvm r && r.severity = Cvss.Critical);
        kvm_med = count (fun r -> affects_kvm r && r.severity = Cvss.Medium);
        common_crit =
          count (fun r -> r.affects = Both && r.severity = Cvss.Critical);
        common_med =
          count (fun r -> r.affects = Both && r.severity = Cvss.Medium);
      })
    table1_counts

let total rows =
  List.fold_left
    (fun acc row ->
      {
        row_year = 0;
        xen_crit = acc.xen_crit + row.xen_crit;
        xen_med = acc.xen_med + row.xen_med;
        kvm_crit = acc.kvm_crit + row.kvm_crit;
        kvm_med = acc.kvm_med + row.kvm_med;
        common_crit = acc.common_crit + row.common_crit;
        common_med = acc.common_med + row.common_med;
      })
    { row_year = 0; xen_crit = 0; xen_med = 0; kvm_crit = 0; kvm_med = 0;
      common_crit = 0; common_med = 0 }
    rows

let category_breakdown ~xen severity =
  let relevant =
    List.filter
      (fun r ->
        r.severity = severity && if xen then affects_xen r else affects_kvm r)
      all
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace table r.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt table r.category)))
    relevant;
  List.sort
    (fun (_, a) (_, b) -> Int.compare b a)
    (Hashtbl.fold (fun c n acc -> (c, n) :: acc) table [])

let find id =
  List.find_opt (fun r -> String.equal r.id id) (all @ hardware_level)

let pp_category fmt = function
  | Pv_mechanisms -> Format.pp_print_string fmt "PV mechanisms"
  | Resource_mgmt -> Format.pp_print_string fmt "resource management"
  | Hardware_handling -> Format.pp_print_string fmt "hardware mishandling"
  | Toolstack -> Format.pp_print_string fmt "toolstack"
  | Qemu -> Format.pp_print_string fmt "QEMU"
  | Ioctl -> Format.pp_print_string fmt "ioctls"

let pp_record fmt r =
  let affects =
    match r.affects with
    | Xen_only -> "xen"
    | Kvm_only -> "kvm"
    | Both -> "xen+kvm"
  in
  Format.fprintf fmt "%s (%d, %s, %a, %a, score %.1f)" r.id r.year affects
    Cvss.pp_severity r.severity pp_category r.category
    (Cvss.base_score r.vector)
