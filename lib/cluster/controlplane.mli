(** Replicated hierarchical control plane: crash-survivable campaigns
    at fleet scale.

    The fleet is partitioned into regions.  Each region is run by a
    {e sub-controller} that owns its own append-only journal, circuit
    breaker and admission budget — a scaled-down {!Campaign} controller.
    A {e root supervisor} allocates the global concurrency budget across
    regions, collects sub-controller heartbeats on the simulation
    engine's timer surface ({!Sim.Engine.schedule_every}), and detects
    sub-controller death by heartbeat timeout.

    {b No root-private state is load-bearing.}  Everything the root
    knows — which regions have finished, who holds reallocated
    admission slots, where each in-flight attempt stands — is re-derived
    from the surviving sub-journals: recovery of a crashed
    sub-controller replays its journal and then catches up to the
    present, and a root crash aborts the incarnation with a {!bundle}
    of the sub-journals from which {!resume} (leader handoff) rebuilds
    the entire global view.

    {b Timeline neutrality.}  Every journal entry is stamped with the
    event's {e derived} logical time — a pure function of the journal
    prefix and the config — never with the engine clock at the moment
    the entry happened to be written.  A sub-controller recovered after
    a detection delay writes its backlog with the original stamps, so
    for any seeded schedule of crashes, partitions and resumes
    (including a crash in the middle of a resume replay) the final
    report and merged journal are byte-identical to the uninterrupted
    run.  The property-based tests pin exactly this invariant.

    Control-plane fault sites ({!Fault.controlplane_sites}) are
    consulted on a caller-supplied plan that is deliberately {e not}
    cursor-tracked in the journals: a chaotic run's journals stay
    byte-identical to a calm run's.  Per-host fault decisions are drawn
    from {e per-region derived plans} (seeded from the caller plan's
    seed and the region index), so cross-region interleaving never
    perturbs a region's fault stream. *)

type config = {
  regions : int;  (** number of sub-controllers *)
  hosts_per_region : int;
  vms_per_host : int;  (** VMs riding through each in-place upgrade *)
  global_concurrency : int;
      (** fleet-wide admission budget, split evenly across regions
          (remainder to the lowest indices) and reallocated as regions
          finish *)
  straggler_factor : float;  (** deadline = factor x expected, >= 1.2 *)
  breaker_window : int;
  breaker_threshold : float;
  breaker_cooldown : Sim.Time.t;
  jitter_pct : float;  (** success-time jitter, <= 0.1 *)
  drain_flakiness : float;  (** per-host probability a fallback drain fails *)
  heartbeat_every : Sim.Time.t;  (** sub-controller heartbeat period *)
  heartbeat_timeout : Sim.Time.t;
      (** root declares a sub-controller dead after this much silence;
          must exceed [heartbeat_every] *)
  realloc_lag : Sim.Time.t;
      (** lease delay between a region finishing and its admission
          slots taking effect elsewhere; must be at least
          [heartbeat_timeout + 2 x heartbeat_every] so a reallocation
          never lands inside the detection window of the region that
          granted it *)
  seed : int64;  (** drives drain coins and success jitter *)
}

val default_config : config
(** 4 regions x 25 hosts, 8 VMs/host, global concurrency 8, heartbeats
    every 5s with a 12s timeout, reallocation lag 22s. *)

val config_of_topology : Topology.t -> config -> config
(** [base] with its region grid replaced by [topology]'s shape.  The
    control plane splits its admission budget over equal regions, so
    the topology must be uniform (every region the same hosts x VMs);
    raises [Hypertp.Error.Error] (site ["Controlplane"]) otherwise —
    use [Campaign.run_fleet] for ragged fleets. *)

type step = Inplace | Drain
type manifestation = Crash | Timeout | Flap

type host_status =
  | Upgraded_inplace
  | Drained  (** in-place failed; fallback drain + reboot succeeded *)
  | Deferred_exposed  (** both rungs failed; still on the old hypervisor *)

type event =
  | Admitted of step
  | Flap_failure  (** first flap leg: host failed, then recovered *)
  | Straggler_cancelled
  | Attempt_failed of { step : step; manifestation : manifestation }
  | Attempt_completed of step
  | Breaker_opened
  | Breaker_half_opened
  | Breaker_closed
  | Limit_raised of { from_region : int; slots : int }
      (** a finished region's admission slots arriving, [realloc_lag]
          after its finish stamp *)
  | Region_finished

type host_record = {
  h_name : string;  (** ["r<region>-h<index>"] *)
  h_status : host_status;
  h_attempts : int;
  h_manifestations : manifestation list;
  h_done_at : Sim.Time.t;
  h_exposure_hours : float;
}

type region_report = {
  rr_region : int;
  rr_hosts : host_record list;
  rr_finished_at : Sim.Time.t;
  rr_breaker_trips : int;
  rr_deferred : string list;
}

type report = {
  cp_cfg : config;
  cp_regions : region_report list;
  cp_wall_clock : Sim.Time.t;  (** latest region finish stamp *)
  cp_exposed_host_hours : float;
  cp_baseline_exposed_host_hours : float;
  cp_hosts_inplace : int;
  cp_hosts_drained : int;
  cp_hosts_exposed : int;
}
(** Reports carry {e only} timeline-derived data.  Supervision
    accounting — restarts, spurious restarts, partitions, handoffs — is
    deliberately kept out (it lives in the metrics registry), because
    the byte-identity invariant says a chaotic run's report equals the
    calm run's. *)

val summary : report -> string
(** A stable multi-line rendering, suitable for golden tests. *)

type bundle
(** The durable state of one incarnation: the config plus every
    region's journal.  This is all a new leader needs. *)

val bundle_config : bundle -> config
val bundle_length : bundle -> int
(** Total entries across all region journals. *)

val merged_to_string : bundle -> string
(** The global campaign timeline: all region journals merged by
    (stamp, region, in-region order), one line per entry.  Two bundles
    from byte-identical runs merge to byte-identical strings. *)

val bundle_to_string : bundle -> string
(** Self-describing text serialisation (config + per-region entries);
    round-trips through {!bundle_of_string}. *)

val bundle_of_string : string -> (bundle, string) result

type run_result =
  | Finished of report * bundle
  | Crashed of bundle
      (** the root supervisor died ([Root_crash], or
          [Crash_during_resume] while it was recovering a
          sub-controller); hand the bundle to {!resume} *)

val run :
  ?ctx:Hypertp.Ctx.t ->
  ?fault:Fault.t ->
  ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t ->
  config ->
  run_result
(** Run a fresh campaign.  [fault] arms both the per-host sites
    (Host_flap / Host_crash / Host_timeout, re-seeded per region) and
    the control-plane sites ([Subctl_crash] consulted per sub-controller
    journal append, [Root_crash] per root heartbeat tick,
    [Ctl_partition] per heartbeat receipt, [Crash_during_resume] per
    entry replayed during any recovery).  Sub-controller crashes and
    partitions are absorbed {e inside} the run by heartbeat detection
    and journal recovery; only a root death surfaces as [Crashed]. *)

val resume :
  ?ctx:Hypertp.Ctx.t ->
  ?fault:Fault.t ->
  ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t ->
  bundle ->
  run_result
(** Leader handoff: replay every region journal (re-validating each
    region's derived fault cursor), re-emit the merged timeline to
    [obs], finish any settle the crash interrupted, and drive the
    campaign to completion.  Unlike the per-host plans, the
    control-plane chaos plan is used {e as given} — not restarted — so
    an [Nth_hit] on [Crash_during_resume] fires once across a
    run/resume chain instead of re-killing every resume (pass the same
    plan value you passed to {!run}). *)

val run_to_completion :
  ?ctx:Hypertp.Ctx.t ->
  ?fault:Fault.t ->
  ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t ->
  config ->
  report
(** [run] then [resume] until [Finished], threading one chaos plan
    through the whole chain. *)
