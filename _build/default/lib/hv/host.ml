type packed =
  | Packed :
      (module Intf.S with type t = 'hv and type domain = 'dom)
      * 'hv
      * (string, 'dom) Hashtbl.t
      -> packed

type t = {
  host_name : string;
  machine : Hw.Machine.t;
  pmem : Hw.Pmem.t;
  rng : Sim.Rng.t;
  mutable running : packed option;
  mutable boots : int;
}

let create ?(seed = 0xB00DL) ~name machine =
  {
    host_name = name;
    machine;
    pmem = Hw.Machine.fresh_pmem ~seed machine;
    rng = Sim.Rng.create (Int64.add seed (Int64.of_int (Hashtbl.hash name)));
    running = None;
    boots = 0;
  }

let boot_hypervisor t (module H : Intf.S) =
  (match t.running with
  | Some _ -> invalid_arg "Host.boot_hypervisor: a hypervisor is running"
  | None -> ());
  let hv = H.boot ~machine:t.machine ~pmem:t.pmem ~rng:t.rng in
  t.boots <- t.boots + 1;
  t.running <- Some (Packed ((module H), hv, Hashtbl.create 16))

let running_exn t =
  match t.running with
  | Some p -> p
  | None -> invalid_arg "Host: no hypervisor running"

let hypervisor_kind t =
  match t.running with
  | None -> None
  | Some (Packed ((module H), _, _)) -> Some H.kind

let hypervisor_name t =
  match t.running with
  | None -> "(none)"
  | Some (Packed ((module H), _, _)) -> H.name

let create_vm t config =
  let (Packed ((module H), hv, table)) = running_exn t in
  if Hashtbl.mem table config.Vmstate.Vm.name then
    invalid_arg ("Host.create_vm: duplicate VM name " ^ config.Vmstate.Vm.name);
  let dom = H.create_vm hv ~rng:t.rng config in
  Hashtbl.replace table config.Vmstate.Vm.name dom;
  H.vm dom

let vm_names t =
  match t.running with
  | None -> []
  | Some (Packed (_, _, table)) ->
    List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) table [])

let find_vm t name =
  match t.running with
  | None -> None
  | Some (Packed ((module H), _, table)) ->
    Option.map H.vm (Hashtbl.find_opt table name)

let vms t = List.filter_map (find_vm t) (vm_names t)
let vm_count t = List.length (vm_names t)

let domain_exn table name =
  match Hashtbl.find_opt table name with
  | None -> invalid_arg ("Host: no VM named " ^ name)
  | Some dom -> dom

let pause_vm t name =
  let (Packed ((module H), hv, table)) = running_exn t in
  H.pause hv (domain_exn table name)

let resume_vm t name =
  let (Packed ((module H), hv, table)) = running_exn t in
  H.resume hv (domain_exn table name)

let pause_all t = List.iter (pause_vm t) (vm_names t)
let resume_all t = List.iter (resume_vm t) (vm_names t)

let to_uisr t name =
  let (Packed ((module H), _, table)) = running_exn t in
  H.to_uisr (domain_exn table name)
let to_uisr_all t = List.map (fun name -> (name, to_uisr t name)) (vm_names t)

let detach_vm t name =
  let (Packed ((module H), hv, table)) = running_exn t in
  match Hashtbl.find_opt table name with
  | None -> invalid_arg ("Host.detach_vm: no VM named " ^ name)
  | Some dom ->
    Hashtbl.remove table name;
    H.detach_vm hv dom

let destroy_vm t name =
  let (Packed ((module H), hv, table)) = running_exn t in
  match Hashtbl.find_opt table name with
  | None -> invalid_arg ("Host.destroy_vm: no VM named " ^ name)
  | Some dom ->
    Hashtbl.remove table name;
    H.destroy_vm hv dom

let restore_from_uisr t ~mem uisr =
  let (Packed ((module H), hv, table)) = running_exn t in
  let name = uisr.Uisr.Vm_state.vm_name in
  if Hashtbl.mem table name then
    invalid_arg ("Host.restore_from_uisr: duplicate VM name " ^ name);
  let dom, fixups = H.from_uisr hv ~rng:t.rng ~mem uisr in
  Hashtbl.replace table name dom;
  fixups

let shutdown_hypervisor t ~keep_guest_memory =
  let (Packed ((module H), hv, table)) = running_exn t in
  let names = vm_names t in
  List.iter
    (fun name ->
      match Hashtbl.find_opt table name with
      | None -> ()
      | Some dom ->
        Hashtbl.remove table name;
        if keep_guest_memory then ignore (H.detach_vm hv dom)
        else H.destroy_vm hv dom)
    names;
  H.shutdown hv;
  t.running <- None

let crash_hypervisor t =
  let (Packed ((module H), _hv, table)) = running_exn t in
  let vms =
    List.map
      (fun name -> (name, H.vm (Hashtbl.find table name)))
      (vm_names t)
  in
  Hashtbl.reset table;
  t.running <- None;
  vms

let management_consistent t =
  let (Packed ((module H), hv, _)) = running_exn t in
  H.management_state_consistent hv

let rebuild_management_state t =
  let (Packed ((module H), hv, _)) = running_exn t in
  H.rebuild_management_state hv

let pp fmt t =
  Format.fprintf fmt "host %s [%s] running %s with %d VMs" t.host_name
    t.machine.Hw.Machine.name (hypervisor_name t) (vm_count t)
