lib/core/api.mli: Cve Hv Hw Inplace Migrate Options Sim Vmstate
