(** Virtio-style split rings: the shared-memory queues between a guest
    driver and the VMM's device emulation.

    The ring indices are the emulated-device state the paper's
    section 4.2.3 worries about: before transplant the device must be
    {e quiesced} (all in-flight buffers completed, used index caught up
    with avail) so the pair (guest driver, emulation) is consistent; the
    indices then travel in the UISR and the target hypervisor's
    emulation resumes exactly where the source's stopped. *)

type desc = {
  addr : Hw.Frame.Gfn.t; (** guest page holding the buffer *)
  len : int;
  write : bool;          (** device-writable buffer *)
  next : int;            (** chaining; [-1] terminates *)
}

type t

val create : Sim.Rng.t -> size:int -> guest_frames:int -> t
(** A ring of [size] descriptors (must be a power of two) over buffers
    scattered in the first [guest_frames] 4 KiB frames. *)

val size : t -> int
val avail_idx : t -> int
val used_idx : t -> int
val in_flight : t -> int
(** Buffers the guest posted that the device has not completed. *)

val guest_post : t -> int -> unit
(** The driver makes [n] more buffers available. *)

val device_complete : t -> int -> unit
(** The emulation consumes [n] buffers.  Raises [Invalid_argument] if
    that would overtake the avail index. *)

val quiesce : t -> unit
(** Complete everything in flight (the pre-transplant pause handshake). *)

val descriptor : t -> int -> desc

val to_words : t -> int64 array
(** Serialise for the UISR device section. *)

val of_words : int64 array -> t
(** Raises [Invalid_argument] on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
