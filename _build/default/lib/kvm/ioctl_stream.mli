(** KVM's native VM state container: a stream of ioctl payloads.

    kvmtool saves/restores a VM by issuing KVM_GET_*/KVM_SET_* ioctls;
    the serialised stream therefore differs structurally from Xen's HVM
    records: MTRR state travels inside the MSR list (Table 2:
    MTRR <-> MSRS), the LAPIC is one register-page payload, XSAVE splits
    into XCRS + XSAVE, and the IRQCHIP carries 24 IOAPIC pins. *)

type error = Truncated | Unknown_ioctl of int | Malformed of string

val pp_error : Format.formatter -> error -> unit

(* ioctl codes (KVM API subset). *)
val kvm_get_regs : int
val kvm_get_sregs : int
val kvm_get_msrs : int
val kvm_get_fpu : int
val kvm_get_lapic : int
val kvm_get_xsave : int
val kvm_get_xcrs : int
val kvm_get_irqchip : int
val kvm_get_pit2 : int

type platform = {
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t; (** 24 pins *)
  pit : Vmstate.Pit.t;
}

val encode : platform -> bytes
(** Raises [Invalid_argument] if the IOAPIC has more pins than KVM's
    irqchip can hold. *)

val decode : bytes -> (platform, error) result
