(** The kvmtool userspace VMM: one lightweight host process per VM.

    kvmtool's small footprint is why MigrationTP's destination-side
    resume is ~27x faster than Xen's toolstack path (Table 4), and its
    one-process-per-VM model is why KVM receives parallel migrations
    without the serialisation Xen suffers (Fig. 8). *)

type process = {
  pid : int;
  proc_vm_name : string;
  guest_mmap_bytes : Hw.Units.bytes_; (** guest memory mapped into the VMM *)
}

type t

val create : unit -> t

val spawn : t -> vm_name:string -> guest_bytes:Hw.Units.bytes_ -> process
(** Raises [Invalid_argument] on duplicate VM names. *)

val kill : t -> vm_name:string -> unit
val find : t -> vm_name:string -> process option
val processes : t -> process list
val count : t -> int
val state_bytes : t -> int
