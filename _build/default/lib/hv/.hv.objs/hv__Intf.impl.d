lib/hv/intf.ml: Hw Kind Sim Uisr Vmstate Workload
