lib/pram/parse.mli: Build Entry Format Hw
