(** Shared cost-model helpers for the transplant phases.

    Work quantities (GiB walked, PRAM entries written, metadata pages
    parsed, frames reserved) come from the actual simulated structures;
    these functions convert them to time using the per-machine
    calibration factors.  EXPERIMENTS.md records the paper-vs-model
    comparison for every constant. *)

val makespan : workers:int -> float list -> float
(** LPT greedy multiprocessor makespan: wall-clock of running the given
    jobs on [workers] parallel workers. *)

val pram_build_seconds :
  Hw.Machine.t -> gib:float -> entries:int -> float
(** Per-VM PRAM construction: p2m walk proportional to memory size plus
    an 8-byte record write per entry (Fig. 6: ~0.45 s for 1 GiB on M1;
    the entry term is what the huge-page optimisation shrinks). *)

val pram_finalize_seconds : Hw.Machine.t -> total_gib:float -> int -> float
(** Serial chain-sealing across [nvms] VMs once they are paused — the
    part of Translation that grows with total memory (Fig. 7b/7c). *)

val pram_parse_seconds :
  Hw.Machine.t -> metadata_pages:int -> entries:int -> covered_frames:int ->
  float
(** Sequential early-boot parse: page walks, entry decodes and one
    reservation per covered 4 KiB frame (the Reboot growth of Fig. 7). *)

val uisr_encode_seconds : bytes_len:int -> float
val resume_seconds : nvms:int -> float

val audit_sweep_seconds : Hw.Machine.t -> frames_swept:int -> vms:int -> float
(** Post-commit residual audit: a tag read per allocated frame plus a
    platform/device comparison per VM. *)

val scrub_seconds : Hw.Machine.t -> frames_freed:int -> findings:int -> float
(** Scrub-pass remediation: a scrub-and-free per residual frame plus a
    fixed term per finding (staging drop, clock restore, rebuild).
    Charged to the downtime model when the post-commit audit flags
    residue. *)

(** {1 Expected-duration estimates}

    Supervision needs an a-priori estimate of how long an operation
    {e should} take so it can flag stragglers; these are the same
    calibrated terms the simulator charges, packaged as scalar
    estimates. *)

val expected_host_upgrade_seconds : boot_seconds:float -> vms:int -> float
(** One InPlaceTP host upgrade: target-hypervisor boot plus per-VM
    translate/restore (0.4 s per riding VM — the host-level term, not
    per-VM downtime). *)

val straggler_deadline_seconds : factor:float -> expected:float -> float
(** [factor *. expected], validated: a supervisor escalates a task that
    exceeds this.  Raises [Invalid_argument] if [factor < 1.0] or
    [expected < 0.0]. *)

(** {1 Shadow-host cutover terms}

    The stage and reclaim phases of shadow-host MigrationTP run while
    the source keeps serving, so these terms never touch the downtime
    model; only {!shadow_flip_seconds} is charged inside the cutover
    window. *)

val shadow_stage_seconds : boot_seconds:float -> vms:int -> float
(** Staging the spare: target-hypervisor boot plus a per-VM skeleton
    pre-restore (0.25 s each).  Pass [boot_seconds = 0.0] for a
    pre-staged spare whose hypervisor already runs.  Raises
    [Invalid_argument] on a negative boot time. *)

val shadow_flip_seconds : float
(** The identity swap itself — gratuitous ARP plus route flip — paid
    inside the cutover downtime on top of the final dirty set and the
    swap handshake round-trips. *)

val shadow_reclaim_seconds : vms:int -> float
(** Tearing the source copies down after a committed swap (paid after
    the VMs already run on the spare). *)

(** {1 Memoisation of per-host estimates}

    Campaign planning calls the estimators above once per host with a
    handful of distinct keys (hv pair, VM profile).  [Memo] is a tiny
    cache keyed on those profiles so a 10k-host plan computes each
    distinct estimate once.  Only memoise deterministic estimators. *)
module Memo : sig
  type ('a, 'b) t

  val create : int -> ('a, 'b) t
  (** [create n] sizes the underlying [Hashtbl] for [n] expected keys. *)

  val find_or_add : ('a, 'b) t -> 'a -> ('a -> 'b) -> 'b
  (** [find_or_add t key f] returns the cached value for [key] or
      computes, stores and returns [f key]. *)
end
