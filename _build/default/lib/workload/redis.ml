let warmup_window_s = 3.0

let resume_points sched =
  (* Times at which service resumes after a Stopped interval. *)
  let rec go prev_stopped acc = function
    | [] -> List.rev acc
    | (at, c) :: rest ->
      let acc =
        match c with
        | Sched.Running _ | Sched.Degraded _ when prev_stopped -> at :: acc
        | Sched.Running _ | Sched.Degraded _ | Sched.Stopped -> acc
      in
      go (c = Sched.Stopped) acc rest
  in
  (* Re-derive segments through breakpoints + condition_at. *)
  let bps = Sched.breakpoints sched in
  let conds = List.map (fun at -> (at, Sched.condition_at sched at)) bps in
  go false [] conds

let qps_timeline ~rng ~sched ~duration_s =
  let trace = Sim.Trace.create ~name:"redis-qps" () in
  let resumes = resume_points sched in
  let n = int_of_float duration_s in
  for i = 0 to n - 1 do
    let at = float_of_int i in
    let rate = Sched.rate_factor sched at ~base:Profile.redis_qps in
    let rate =
      (* Pre-copy halves throughput beyond the batch stretch factor. *)
      match Sched.condition_at sched at with
      | Sched.Degraded (p, _) ->
        Profile.redis_qps p *. Profile.precopy_qps_factor Vmstate.Vm.Wl_redis
      | Sched.Running _ | Sched.Stopped -> rate
    in
    let rate =
      (* Warm-up dip right after a resume (cold caches, NPT rebuild). *)
      let dip =
        List.fold_left
          (fun acc r ->
            let dt = at -. r in
            if dt >= 0.0 && dt < warmup_window_s then
              Float.min acc (0.75 +. (0.25 *. dt /. warmup_window_s))
            else acc)
          1.0 resumes
      in
      rate *. dip
    in
    let noisy = rate *. Sim.Rng.jitter rng 0.04 in
    Sim.Trace.add trace (Sim.Time.of_sec_f at) noisy
  done;
  trace

let mean_qps trace ~from_s ~until_s =
  Sim.Trace.mean_between trace (Sim.Time.of_sec_f from_s)
    (Sim.Time.of_sec_f until_s)
