(** Byte and page units shared by the whole system. *)

type bytes_ = int
(** A byte count. 63-bit ints cover any machine we model. *)

val kib : int -> bytes_
val mib : int -> bytes_
val gib : int -> bytes_

val page_size_4k : bytes_
val page_size_2m : bytes_

type page_kind = Page_4k | Page_2m

val page_size : page_kind -> bytes_
val frames_per_page : page_kind -> int
(** Number of 4 KiB machine frames covered by one page of this kind. *)

val pages_of_bytes : page_kind -> bytes_ -> int
(** Rounding up. Raises on negative sizes. *)

val frames_of_bytes : bytes_ -> int
(** 4 KiB frames needed to back [b] bytes, rounding up. *)

val to_gib_f : bytes_ -> float
val to_mib_f : bytes_ -> float
val to_kib_f : bytes_ -> float

val pp_bytes : Format.formatter -> bytes_ -> unit
(** Human-readable: "1.0GiB", "148KiB", "512B". *)

val pp_page_kind : Format.formatter -> page_kind -> unit
