(** Versioned binary codec for UISR blobs.

    Layout: magic "UISR" + format version, followed by TLV sections
    (VM info, one section per vCPU, IOAPIC, PIT, devices, memory map),
    terminated by a CRC32 over everything before it.  Unknown section
    tags are rejected; truncated or corrupted blobs fail decoding — the
    failure-injection tests depend on both properties.

    The format is deliberately close in spirit to Xen's HVM save-record
    stream (typed records with explicit lengths): the paper chose a
    slightly modified Xen representation as its UISR because Xen's is
    mature and open (section 4.2). *)

type error =
  | Truncated
  | Bad_magic
  | Unsupported_version of int
  | Crc_mismatch of string
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val format_version : int

val encode : Vm_state.t -> bytes
val decode : bytes -> (Vm_state.t, error) result

val corrupt : bytes -> bytes
(** A copy of the blob with one payload byte flipped, leaving the
    length intact — the deterministic bit-rot the fault-injection
    campaigns feed to {!decode}, which must reject it
    ([Crc_mismatch]). *)

val size_bytes : Vm_state.t -> int
(** Encoded size — the "UISR formats" series of Fig. 14. *)

val platform_size_bytes : Vm_state.t -> int
(** Encoded size of the platform sections only (vCPUs + IOAPIC + PIT +
    devices), excluding the memory map (accounted to PRAM in Fig. 14). *)
