type event =
  | Disclosed of string
  | Host_transplanted of { host : string; to_hv : string; downtime : Sim.Time.t }
  | Patch_released
  | Host_patched of { host : string; downtime : Sim.Time.t }

type outcome = {
  events : (Sim.Time.t * event) array;
  exposed_host_hours : float;
  baseline_exposed_host_hours : float;
  total_vm_downtime : Sim.Time.t;
  transplants : int;
}

let hours t = Sim.Time.to_sec_f t /. 3600.0

let simulate ?(hosts = 8) ?(vms_per_host = 4) ?topology ?window_days
    ?(stagger = Sim.Time.sec 600) ~cve_id () =
  let site = "Fleet.simulate" in
  (* A topology overrides the flat [hosts]/[vms_per_host] integers:
     the fleet is its regions concatenated in order, each host carrying
     its region's VM density.  Without one, the legacy arguments build
     the same flat fleet as before, byte for byte. *)
  let hosts, per_host_vms =
    match Option.map Topology.validate_exn topology with
    | None -> (hosts, Array.make (Stdlib.max 0 hosts) vms_per_host)
    | Some t ->
      let total = Topology.hosts t in
      let a = Array.make total vms_per_host in
      let k = ref 0 in
      Array.iter
        (fun r ->
          for _ = 1 to r.Topology.rg_hosts do
            a.(!k) <- r.Topology.rg_vms_per_host;
            incr k
          done)
        (Topology.regions t);
      (total, a)
  in
  let record =
    match Cve.Nvd.find cve_id with
    | Some r -> r
    | None ->
      Hypertp_error.raise_errorf ~site
        ~hint:"list known ids with the `cve` CLI command" "unknown CVE %s"
        cve_id
  in
  let target =
    match
      Cve.Window.advise
        ~fleet:(List.map Hv.Kind.to_string Hv.Kind.all)
        ~current:"xen" record
    with
    | Cve.Window.Transplant_to hv -> Option.get (Hv.Kind.of_string hv)
    | Cve.Window.Wait_for_patch | Cve.Window.No_action ->
      Hypertp_error.raise_error ~site
        ~hint:"only critical CVEs against the running hypervisor trigger a \
               transplant"
        "the policy would not act on this CVE"
    | Cve.Window.No_safe_alternative ->
      Hypertp_error.raise_error ~site
        "no safe alternative in the repertoire"
  in
  let window_days =
    match window_days with
    | Some d -> d
    | None -> Option.value ~default:30 record.Cve.Nvd.window_days
  in
  let window = Sim.Time.sec (window_days * 24 * 3600) in
  (* Real simulated hosts: transplants below actually run. *)
  let fleet =
    Array.init hosts (fun i ->
        Hypertp.Api.provision
          ~seed:(Int64.of_int (1000 + i))
          ~name:(Printf.sprintf "host%02d" i)
          ~machine:(Hw.Machine.g5k_node ()) ~hv:Hv.Kind.Xen
          (List.init per_host_vms.(i) (fun j ->
               Vmstate.Vm.config
                 ~name:(Printf.sprintf "h%02d-vm%d" i j)
                 ~ram:(Hw.Units.gib 1) ())))
  in
  let engine = Sim.Engine.create () in
  (* Exactly 2 events per host plus disclosure and patch release, so
     the buffer is sized once; callbacks append in engine dispatch
     order, which is the documented (time, schedule-order) order. *)
  let events =
    Sim.Vec.create ~capacity:((2 * hosts) + 2) (Sim.Time.zero, Patch_released)
  in
  let emit ev = Sim.Vec.push events (Sim.Engine.now engine, ev) in
  let total_downtime = ref Sim.Time.zero in
  let transplants = ref 0 in
  (* Exposure accrues incrementally: each host stops being exposed at
     its first transplant, and the callbacks fire in host order, so the
     running sum adds the same terms in the same order as the old
     end-of-run fold over the fleet. *)
  let exposed = ref 0.0 in
  let out_transplanted = ref 0 in
  (* t0: disclosure; hosts transplant to the safe target one after
     another (operators stagger rollouts). *)
  Sim.Engine.schedule_at engine Sim.Time.zero (fun () -> emit (Disclosed cve_id));
  Array.iteri
    (fun i host ->
      Sim.Engine.schedule_at engine
        (Sim.Time.add (Sim.Time.sec 60) (Sim.Time.scale (float_of_int i) stagger))
        (fun () ->
          let report = Hypertp.Api.transplant_inplace ~host ~target () in
          assert (Hypertp.Inplace.all_ok report.Hypertp.Inplace.checks);
          let downtime = Hypertp.Phases.downtime report.Hypertp.Inplace.phases in
          incr transplants;
          total_downtime :=
            Sim.Time.add !total_downtime
              (Sim.Time.scale (float_of_int per_host_vms.(i)) downtime);
          exposed := !exposed +. hours (Sim.Engine.now engine);
          incr out_transplanted;
          emit
            (Host_transplanted
               { host = host.Hv.Host.host_name;
                 to_hv = Hv.Kind.to_string target; downtime })))
    fleet;
  (* t_patch: the fixed hypervisor ships; hosts transplant back. *)
  Sim.Engine.schedule_at engine window (fun () -> emit Patch_released);
  Array.iteri
    (fun i host ->
      Sim.Engine.schedule_at engine
        (Sim.Time.add window
           (Sim.Time.add (Sim.Time.sec 60)
              (Sim.Time.scale (float_of_int i) stagger)))
        (fun () ->
          let report =
            Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Xen ()
          in
          assert (Hypertp.Inplace.all_ok report.Hypertp.Inplace.checks);
          let downtime = Hypertp.Phases.downtime report.Hypertp.Inplace.phases in
          incr transplants;
          total_downtime :=
            Sim.Time.add !total_downtime
              (Sim.Time.scale (float_of_int per_host_vms.(i)) downtime);
          emit
            (Host_patched { host = host.Hv.Host.host_name; downtime })))
    fleet;
  Sim.Engine.run engine;
  (* Hosts that never transplanted (impossible today, but kept for
     robustness) stay exposed for the whole window. *)
  let exposed =
    !exposed +. (float_of_int (hosts - !out_transplanted) *. hours window)
  in
  {
    events = Sim.Vec.to_array events;
    exposed_host_hours = exposed;
    baseline_exposed_host_hours = float_of_int hosts *. hours window;
    total_vm_downtime = !total_downtime;
    transplants = !transplants;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "@[<v>%d transplants; exposure %.1f host-hours vs %.1f without HyperTP \
     (%.2f%%); total VM downtime %a@]"
    o.transplants o.exposed_host_hours o.baseline_exposed_host_hours
    (100.0 *. o.exposed_host_hours /. o.baseline_exposed_host_hours)
    Sim.Time.pp o.total_vm_downtime
