lib/uisr/fixup.mli: Format
