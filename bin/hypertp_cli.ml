(* hypertp-cli: drive the HyperTP simulator from the command line.

   Subcommands:
     cve       - query the vulnerability study and the transplant policy
     inplace   - run an InPlaceTP transplant on a simulated host
     migrate   - run a MigrationTP (or homogeneous) live migration
     memsep    - show the memory-separation classification of a host
     cluster   - plan and time a rolling cluster upgrade
     respond   - the one-click CVE response flow *)

open Cmdliner

(* --- shared argument converters --- *)

let machine_conv =
  let parse = function
    | "m1" | "M1" -> Ok (Hw.Machine.m1 ())
    | "m2" | "M2" -> Ok (Hw.Machine.m2 ())
    | "g5k" | "G5K" -> Ok (Hw.Machine.g5k_node ())
    | s -> Error (`Msg (Printf.sprintf "unknown machine %S (m1|m2|g5k)" s))
  in
  let print fmt (m : Hw.Machine.t) = Format.pp_print_string fmt m.name in
  Arg.conv (parse, print)

let hv_conv =
  let parse s =
    match Hv.Kind.of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown hypervisor %S (xen|kvm)" s))
  in
  Arg.conv (parse, Hv.Kind.pp)

let machine_arg =
  Arg.(value & opt machine_conv (Hw.Machine.m1 ())
       & info [ "machine" ] ~docv:"MACHINE" ~doc:"Host machine model (m1|m2|g5k).")

let source_arg =
  Arg.(value & opt hv_conv Hv.Kind.Xen
       & info [ "source" ] ~docv:"HV" ~doc:"Hypervisor the host starts on.")

let target_arg =
  Arg.(value & opt hv_conv Hv.Kind.Kvm
       & info [ "target" ] ~docv:"HV" ~doc:"Hypervisor to transplant onto.")

let vms_arg =
  Arg.(value & opt int 1 & info [ "vms" ] ~docv:"N" ~doc:"Number of VMs.")

let vcpus_arg =
  Arg.(value & opt int 1 & info [ "vcpus" ] ~docv:"N" ~doc:"vCPUs per VM.")

let gib_arg =
  Arg.(value & opt int 1 & info [ "gib" ] ~docv:"N" ~doc:"GiB of RAM per VM.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let fault_conv =
  let parse s =
    match Fault.parse_spec s with Ok sp -> Ok sp | Error e -> Error (`Msg e)
  in
  let print fmt (sp : Fault.spec) =
    Format.fprintf fmt "%a:..." Fault.pp_site sp.Fault.spec_injection.Fault.site
  in
  Arg.conv (parse, print)

let fault_arg =
  Arg.(value & opt_all fault_conv []
       & info [ "fault" ] ~docv:"SITE:TRIGGER[,seed=N]"
           ~doc:"Arm a fault injection, e.g. $(b,kexec_jump:1) (fire on the \
                 first hit), $(b,vm_restore:vm=vm0) (fire for that VM), or \
                 $(b,migration_link_drop:p=0.1,seed=7) (fire with probability \
                 0.1, RNG seeded with 7).  Repeatable.")

let fault_of_specs = function [] -> None | specs -> Some (Fault.of_specs specs)

let topology_conv =
  let parse s =
    match Cluster.Topology.of_spec s with
    | Ok t -> Ok t
    | Error e -> Error (`Msg e)
  in
  let print fmt t = Format.pp_print_string fmt (Cluster.Topology.spec t) in
  Arg.conv (parse, print)

let topology_arg ~doc =
  Arg.(value & opt (some topology_conv) None
       & info [ "topology" ] ~docv:"SPEC" ~doc)

let shard_mode_conv =
  let parse s =
    match Sim.Shard.of_string s with Ok m -> Ok m | Error e -> Error (`Msg e)
  in
  let print fmt m = Format.pp_print_string fmt (Sim.Shard.to_string m) in
  Arg.conv (parse, print)

let audit_flag =
  Arg.(value & flag
       & info [ "audit" ]
           ~doc:"Arm the post-commit residual audit: sweep the target world \
                 against a fresh-boot reference after the transplant, \
                 scrub-and-recheck on findings.")

let audit_of_flag armed =
  if armed then Some Hypertp.Ctx.audit_default else None

let print_fault_trace = function
  | None -> ()
  | Some f -> Format.printf "fault trace:@.%a@." Fault.pp_trace f

let verbose_arg =
  let setup verbosity =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level
      (Some
         (match List.length verbosity with
         | 0 -> Logs.Warning
         | 1 -> Logs.Info
         | _ -> Logs.Debug))
  in
  Term.(const setup
        $ Arg.(value & flag_all
               & info [ "v"; "verbose" ]
                   ~doc:"Increase log verbosity (repeatable): $(b,-v) \
                         narrates each workflow step, $(b,-v -v) adds \
                         span-level debug detail."))

(* --- observability plumbing shared by inplace/migrate/campaign --- *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"PATH"
           ~doc:"Write a Chrome trace_event JSON recording of the run here \
                 (open in Perfetto or chrome://tracing).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"PATH"
           ~doc:"Write an OpenMetrics text snapshot of the run's counters, \
                 gauges and histograms here.")

let obs_of_paths trace_out metrics_out =
  ( Option.map (fun _ -> Obs.Tracer.create ()) trace_out,
    Option.map (fun _ -> Obs.Metrics.create ()) metrics_out )

let write_obs trace_out metrics_out obs metrics =
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  (match (trace_out, obs) with
  | Some path, Some tr ->
    write path (Obs.Export.chrome_trace tr);
    Format.printf "trace (%d spans) written to %s@." (Obs.Tracer.count tr) path
  | _ -> ());
  match (metrics_out, metrics) with
  | Some path, Some m ->
    write path (Obs.Export.open_metrics m);
    Format.printf "metrics written to %s@." path
  | _ -> ()

let provision ~machine ~hv ~vms ~vcpus ~gib ~seed =
  let configs =
    List.init vms (fun i ->
        Vmstate.Vm.config ~name:(Printf.sprintf "vm%d" i) ~vcpus
          ~ram:(Hw.Units.gib gib) ())
  in
  Hypertp.Api.provision ~seed ~name:"cli-host" ~machine ~hv configs

(* --- cve --- *)

let cve_cmd =
  let action =
    Arg.(value & pos 0 (enum [ ("table", `Table); ("show", `Show); ("windows", `Windows) ]) `Table
         & info [] ~docv:"ACTION" ~doc:"table | show | windows")
  in
  let id =
    Arg.(value & pos 1 string "" & info [] ~docv:"CVE-ID" ~doc:"CVE identifier for 'show'.")
  in
  let run action id =
    match action with
    | `Table ->
      let rows = Cve.Nvd.table1 () in
      Format.printf "year   xen crit/med   kvm crit/med   common@.";
      List.iter
        (fun (r : Cve.Nvd.table1_row) ->
          Format.printf "%4d   %3d / %3d      %3d / %3d      %d / %d@."
            r.row_year r.xen_crit r.xen_med r.kvm_crit r.kvm_med
            r.common_crit r.common_med)
        rows
    | `Windows ->
      Format.printf "KVM: %a@." Cve.Window.pp_stats (Cve.Window.kvm_stats ());
      Format.printf "Xen: %a@." Cve.Window.pp_stats (Cve.Window.xen_stats ())
    | `Show -> (
      match Cve.Nvd.find id with
      | Some r ->
        Format.printf "%a@." Cve.Nvd.pp_record r;
        Format.printf "advice for a Xen fleet: %a@." Cve.Window.pp_advice
          (Cve.Window.advise ~fleet:[ "xen"; "kvm" ] ~current:"xen" r);
        Format.printf "advice for a KVM fleet: %a@." Cve.Window.pp_advice
          (Cve.Window.advise ~fleet:[ "xen"; "kvm" ] ~current:"kvm" r)
      | None ->
        Format.eprintf "unknown CVE %s@." id;
        exit 1)
  in
  Cmd.v (Cmd.info "cve" ~doc:"Query the vulnerability study (Table 1, section 2.2)")
    Term.(const run $ action $ id)

(* --- inplace --- *)

let inplace_cmd =
  let run () machine source target vms vcpus gib seed fault_specs audit
      trace_out metrics_out =
    if Hv.Kind.equal source target then begin
      Format.eprintf "source and target hypervisors must differ@.";
      exit 1
    end;
    let host = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
    let fault = fault_of_specs fault_specs in
    let obs, metrics = obs_of_paths trace_out metrics_out in
    let report =
      Hypertp.Api.transplant_inplace
        ~ctx:(Hypertp.Ctx.make ?audit:(audit_of_flag audit) ())
        ~rng:(Sim.Rng.create seed) ?fault ?obs ?metrics ~host ~target ()
    in
    Format.printf "%a@." Hypertp.Inplace.pp_report report;
    Format.printf "fixups:@.";
    List.iter
      (fun (vm, fixes) -> Format.printf "  %s: %a@." vm Uisr.Fixup.pp_list fixes)
      report.fixups;
    (match report.Hypertp.Inplace.audit with
    | Some a -> Format.printf "%a@." Audit.pp_report a
    | None -> ());
    print_fault_trace fault;
    write_obs trace_out metrics_out obs metrics;
    if not (Hypertp.Inplace.all_ok report.checks) then exit 2
  in
  Cmd.v
    (Cmd.info "inplace" ~doc:"Run an InPlaceTP micro-reboot transplant")
    Term.(const run $ verbose_arg $ machine_arg $ source_arg $ target_arg
          $ vms_arg $ vcpus_arg $ gib_arg $ seed_arg $ fault_arg $ audit_flag
          $ trace_out_arg $ metrics_out_arg)

(* --- migrate --- *)

let migrate_cmd =
  let run () machine source target vms vcpus gib seed fault_specs audit
      trace_out metrics_out =
    let src = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
    let dst =
      Hypertp.Api.provision ~seed:(Int64.add seed 1L) ~name:"cli-dst" ~machine
        ~hv:target []
    in
    let fault = fault_of_specs fault_specs in
    let obs, metrics = obs_of_paths trace_out metrics_out in
    let report =
      Hypertp.Api.transplant_migration
        ~ctx:(Hypertp.Ctx.make ?audit:(audit_of_flag audit) ())
        ~rng:(Sim.Rng.create seed) ?fault ?obs ?metrics ~src ~dst ()
    in
    Format.printf "%a@." Hypertp.Migrate.pp_report report;
    (match report.Hypertp.Migrate.audit with
    | Some a -> Format.printf "%a@." Audit.pp_report a
    | None -> ());
    print_fault_trace fault;
    write_obs trace_out metrics_out obs metrics;
    if not report.Hypertp.Migrate.checks.Hypertp.Migrate.residual_clean then
      exit 2
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Run a MigrationTP (heterogeneous) or homogeneous live migration")
    Term.(const run $ verbose_arg $ machine_arg $ source_arg $ target_arg
          $ vms_arg $ vcpus_arg $ gib_arg $ seed_arg $ fault_arg $ audit_flag
          $ trace_out_arg $ metrics_out_arg)

(* --- shadow --- *)

let shadow_cmd =
  let no_ladder =
    Arg.(value & flag
         & info [ "no-ladder" ]
             ~doc:"Disable the degradation ladder: any pre-swap abort \
                   defers (the source keeps serving) instead of falling \
                   back to classic MigrationTP on the staged spare.")
  in
  let compare_flag =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"Also run classic MigrationTP on an identical pair and \
                   print the downtime ratio.")
  in
  let run () machine source target vms vcpus gib seed fault_specs no_ladder
      compare trace_out metrics_out =
    let src = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
    let spare = Hv.Host.create ~name:"cli-spare" machine in
    let fault = fault_of_specs fault_specs in
    let obs, metrics = obs_of_paths trace_out metrics_out in
    let r =
      Hypertp.Api.transplant_shadow ~rng:(Sim.Rng.create seed) ?fault ?obs
        ?metrics ~ladder:(not no_ladder) ~src ~spare ~target ()
    in
    Format.printf "%a@." Hypertp.Migrate.pp_shadow_report r;
    if compare then begin
      let csrc = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
      let cspare = Hv.Host.create ~name:"cli-spare" machine in
      Hv.Host.boot_hypervisor cspare (Hypertp.Api.hypervisor_of target);
      let classic =
        Hypertp.Api.transplant_migration ~rng:(Sim.Rng.create seed) ~src:csrc
          ~dst:cspare ()
      in
      let classic_downtime =
        List.fold_left
          (fun acc (v : Hypertp.Migrate.vm_report) ->
            Sim.Time.max acc v.Hypertp.Migrate.downtime)
          Sim.Time.zero classic.Hypertp.Migrate.per_vm
      in
      Format.printf
        "classic MigrationTP downtime: %a@.shadow/classic downtime ratio: \
         %.3f@."
        Sim.Time.pp classic_downtime
        (Sim.Time.to_sec_f r.Hypertp.Migrate.sh_downtime
        /. Sim.Time.to_sec_f classic_downtime)
    end;
    print_fault_trace fault;
    write_obs trace_out metrics_out obs metrics;
    if not r.Hypertp.Migrate.sh_source_intact then exit 2
  in
  Cmd.v
    (Cmd.info "shadow"
       ~doc:"Run a shadow-host MigrationTP: pre-stage the target on a \
             spare, stream and converge while the source serves, swap \
             identities atomically; pre-swap faults abort with the source \
             verified intact and walk the degradation ladder")
    Term.(const run $ verbose_arg $ machine_arg $ source_arg $ target_arg
          $ vms_arg $ vcpus_arg $ gib_arg $ seed_arg $ fault_arg $ no_ladder
          $ compare_flag $ trace_out_arg $ metrics_out_arg)

(* --- audit --- *)

let audit_cmd =
  let no_scrub =
    Arg.(value & flag
         & info [ "no-scrub" ]
             ~doc:"Report findings without remediating them.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"Write the serialized audit report here (deterministic for \
                   a fixed seed; the CI golden diffs against it).")
  in
  let run () machine source target vms vcpus gib seed fault_specs no_scrub
      out =
    if Hv.Kind.equal source target then begin
      Format.eprintf "source and target hypervisors must differ@.";
      exit 1
    end;
    let host = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
    let fault = fault_of_specs fault_specs in
    let ctx =
      Hypertp.Ctx.make ~rng:(Sim.Rng.create seed) ?fault
        ~audit:{ Hypertp.Ctx.audit_scrub = not no_scrub } ()
    in
    let report = Hypertp.Api.transplant_inplace ~ctx ~host ~target () in
    let a =
      match report.Hypertp.Inplace.audit with
      | Some a -> a
      | None -> assert false (* the audit was armed *)
    in
    Format.printf "%a@.outcome: %a@." Audit.pp_report a
      Hypertp.Inplace.pp_outcome report.Hypertp.Inplace.outcome;
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Audit.to_string a);
      close_out oc;
      Format.printf "report written to %s@." path
    | None -> ());
    print_fault_trace fault;
    (* Exit discipline mirrors the severity ladder on the FINAL world:
       2 = exploitable residue left, 1 = fingerprintable residue left. *)
    if Audit.worst a = Some Audit.Exploitable then exit 2
    else if not (Audit.clean a) then exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run an audited InPlaceTP transplant and report residual \
             source-hypervisor state (exit 2 if an exploitable finding is \
             left in the final world)")
    Term.(const run $ verbose_arg $ machine_arg $ source_arg $ target_arg
          $ vms_arg $ vcpus_arg $ gib_arg $ seed_arg $ fault_arg $ no_scrub
          $ out)

(* --- memsep --- *)

let memsep_cmd =
  let run machine source vms vcpus gib seed =
    let host = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
    Format.printf "%a@.%a@." Hv.Host.pp host Hypertp.Memsep.pp
      (Hypertp.Memsep.of_host host)
  in
  Cmd.v
    (Cmd.info "memsep"
       ~doc:"Show the Fig. 2 memory-separation classification of a host")
    Term.(const run $ machine_arg $ source_arg $ vms_arg $ vcpus_arg $ gib_arg
          $ seed_arg)

(* --- cluster --- *)

let cluster_cmd =
  let nodes =
    Arg.(value & opt int 10 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let per_node =
    Arg.(value & opt int 10 & info [ "vms-per-node" ] ~docv:"N" ~doc:"VMs per node.")
  in
  let fraction =
    Arg.(value & opt float 0.8
         & info [ "inplace-fraction" ] ~docv:"F"
             ~doc:"Share of VMs tolerating InPlaceTP downtime.")
  in
  let fault_sweep =
    Arg.(value & opt (some (list float)) None
         & info [ "fault-sweep" ] ~docv:"P1,P2,..."
             ~doc:"Also run $(b,Upgrade.sweep_faulty) at these per-host \
                   failure probabilities and print the per-probability \
                   table.")
  in
  let run nodes vms_per_node fraction fault_sweep seed =
    let sweep =
      Cluster.Upgrade.sweep ~nodes ~vms_per_node ~fractions:[ 0.0; fraction ] ()
    in
    (match sweep with
    | [ (_, base); (_, t) ] ->
      Format.printf "migration-only baseline: %a@." Cluster.Upgrade.pp_timing base;
      Format.printf "with %.0f%% in-place:      %a@." (100.0 *. fraction)
        Cluster.Upgrade.pp_timing t;
      Format.printf "time gain: %.0f%%@."
        (100.0
        *. (1.0
           -. Sim.Time.to_sec_f t.Cluster.Upgrade.total
              /. Sim.Time.to_sec_f base.Cluster.Upgrade.total))
    | _ -> assert false);
    match fault_sweep with
    | None -> ()
    | Some probabilities ->
      Format.printf "@.per-host failure sweep (%dx%d, shared seed %Ld):@."
        nodes vms_per_node seed;
      Format.printf "%-6s %-9s %-10s %-10s %-10s %-10s %s@." "p" "failures"
        "in-place" "drained" "recovered" "added" "total";
      List.iter
        (fun (p, (t : Cluster.Upgrade.faulty_timing)) ->
          Format.printf "%-6.2f %-9d %-10d %-10d %-10d %-10s %a@." p
            (List.length t.Cluster.Upgrade.failures)
            t.Cluster.Upgrade.vms_inplace_ok
            t.Cluster.Upgrade.vms_migrated_fallback
            t.Cluster.Upgrade.vms_recovered
            (Sim.Time.to_string t.Cluster.Upgrade.added_time)
            Sim.Time.pp t.Cluster.Upgrade.total_with_faults)
        (Cluster.Upgrade.sweep_faulty ~nodes ~vms_per_node ~seed
           ~probabilities ())
  in
  Cmd.v
    (Cmd.info "cluster" ~doc:"Plan and time a rolling cluster upgrade (Fig. 13)")
    Term.(const run $ nodes $ per_node $ fraction $ fault_sweep $ seed_arg)

(* --- respond --- *)

let respond_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CVE-ID" ~doc:"The disclosed vulnerability.")
  in
  let apply =
    Arg.(value & flag & info [ "apply" ] ~doc:"Actually run the transplant.")
  in
  let run machine source vms vcpus gib seed id apply =
    let host = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
    let mode = if apply then `Apply else `Advise in
    let r = Hypertp.Api.respond_to_cve ~host ~cve_id:id ~mode () in
    Format.printf "advice: %a@." Cve.Window.pp_advice r.advice;
    match r.outcome with
    | `Applied report -> Format.printf "%a@." Hypertp.Inplace.pp_report report
    | `Advised target ->
      Format.printf "(advice only; pass --apply to transplant to %a)@."
        Hv.Kind.pp target
    | `No_action -> Format.printf "(no transplant performed)@."
    | `No_safe_alternative ->
      Format.printf "(no safe alternative in the repertoire)@."
  in
  Cmd.v
    (Cmd.info "respond" ~doc:"One-click CVE response (Fig. 1b)")
    Term.(const run $ machine_arg $ source_arg $ vms_arg $ vcpus_arg $ gib_arg
          $ seed_arg $ id $ apply)

(* --- snapshot --- *)

let snapshot_cmd =
  let file =
    Arg.(required & opt (some string) None
         & info [ "file"; "f" ] ~docv:"PATH" ~doc:"Snapshot file.")
  in
  let action =
    Arg.(value & pos 0 (enum [ ("save", `Save); ("restore", `Restore) ]) `Save
         & info [] ~docv:"ACTION" ~doc:"save | restore")
  in
  let run action file machine source target vms vcpus gib seed =
    match action with
    | `Save ->
      let host = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
      let snap = Hypertp.Snapshot.capture host "vm0" in
      let blob = Hypertp.Snapshot.to_bytes snap in
      let oc = open_out_bin file in
      output_bytes oc blob;
      close_out oc;
      Format.printf "saved %s (%d bytes, %d bytes of guest memory) to %s@."
        (Hypertp.Snapshot.vm_name snap) (Bytes.length blob)
        (Hypertp.Snapshot.memory_bytes snap) file
    | `Restore -> (
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let blob = Bytes.create len in
      really_input ic blob 0 len;
      close_in ic;
      match Hypertp.Snapshot.of_bytes blob with
      | Error e ->
        Format.eprintf "cannot restore: %s@." e;
        exit 1
      | Ok snap ->
        let host =
          Hypertp.Api.provision ~seed ~name:"restore-host" ~machine ~hv:target
            []
        in
        let fixups = Hypertp.Snapshot.restore snap host in
        Format.printf
          "restored %s (suspended under %s) onto %s@.fixups: %a@."
          (Hypertp.Snapshot.vm_name snap)
          (Hypertp.Snapshot.source_hypervisor snap)
          (Hv.Host.hypervisor_name host) Uisr.Fixup.pp_list fixups)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Suspend a VM to a file and resume it under any hypervisor")
    Term.(const run $ action $ file $ machine_arg $ source_arg $ target_arg
          $ vms_arg $ vcpus_arg $ gib_arg $ seed_arg)

(* --- fault-campaign --- *)

let fault_campaign_cmd =
  let sweep =
    Arg.(value & flag
         & info [ "sweep" ]
             ~doc:"Also sweep the per-host failure probability over a 10x10 \
                   cluster upgrade.")
  in
  let list_flag =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"List every injection site with its consulting engine and \
                   the valid trigger forms, without running anything.")
  in
  let list_sites () =
    (* Triggers are uniform across sites: parse_injection accepts
       site:N (fire on the Nth hit), site:p=F (per-hit probability) and
       site:vm=NAME (fire for that VM only). *)
    Format.printf "%-24s %-14s %s@." "site" "consulted by"
      "valid triggers (--fault site:TRIGGER[,seed=N])";
    let row engine site =
      Format.printf "%-24s %-14s %s@."
        (Fault.site_to_string site) engine "N | p=F | vm=NAME"
    in
    List.iter (row "inplace")
      (List.filter
         (fun s ->
           not
             (List.mem s
                [ Fault.Migration_link_drop; Fault.Migration_link_degrade ]))
         Fault.engine_sites);
    List.iter (row "migration")
      [ Fault.Migration_link_drop; Fault.Migration_link_degrade ];
    List.iter (row "shadow") Fault.shadow_sites;
    List.iter (row "campaign") Fault.cluster_sites;
    List.iter (row "controlplane") Fault.controlplane_sites;
    List.iter (row "stream") Fault.stream_sites
  in
  let rec run machine source target vms vcpus gib seed sweep list =
    if list then list_sites ()
    else run_campaign machine source target vms vcpus gib seed sweep
  and run_campaign machine source target vms vcpus gib seed sweep =
    (* One run per engine-level injection site, fault fired on its first
       hit: the exhaustive deterministic campaign.  Cluster-level sites
       are listed separately — they are consulted by the campaign
       controller, not by a single transplant. *)
    Format.printf "%-24s %-12s %-10s %s@." "site" "engine" "survival"
      "outcome";
    List.iter
      (fun site ->
        let fault =
          Fault.make ~seed
            [ { Fault.site; trigger = Fault.Nth_hit 1 } ]
        in
        match site with
        | Fault.Migration_link_drop | Fault.Migration_link_degrade ->
          let src = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
          let dst =
            Hypertp.Api.provision ~seed:(Int64.add seed 1L) ~name:"c-dst"
              ~machine ~hv:target []
          in
          let r =
            Hypertp.Api.transplant_migration ~rng:(Sim.Rng.create seed) ~fault
              ~src ~dst ()
          in
          let alive = Hv.Host.vm_count src + Hv.Host.vm_count dst in
          let outcome =
            Format.asprintf "%a"
              Format.(
                pp_print_list
                  ~pp_sep:(fun f () -> pp_print_string f "; ")
                  (fun f (v : Hypertp.Migrate.vm_report) ->
                    fprintf f "%s %a" v.vm_name Hypertp.Migrate.pp_outcome
                      v.outcome))
              r.Hypertp.Migrate.per_vm
          in
          Format.printf "%-24s %-12s %d/%-8d %s@."
            (Fault.site_to_string site) "migration" alive vms outcome
        | _ ->
          let host = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
          let r =
            Hypertp.Api.transplant_inplace ~rng:(Sim.Rng.create seed) ~fault
              ~host ~target ()
          in
          let alive = Hv.Host.vm_count host in
          Format.printf "%-24s %-12s %d/%-8d %a@."
            (Fault.site_to_string site) "inplace" alive vms
            Hypertp.Inplace.pp_outcome r.Hypertp.Inplace.outcome)
      Fault.engine_sites;
    (* Shadow sites, against the shadow-host engine: every one is
       pre-swap, so the source must survive each abort and the report
       must name the rung of the degradation ladder actually taken. *)
    List.iter
      (fun site ->
        let fault =
          Fault.make ~seed [ { Fault.site; trigger = Fault.Nth_hit 1 } ]
        in
        let src = provision ~machine ~hv:source ~vms ~vcpus ~gib ~seed in
        let spare = Hv.Host.create ~name:"c-spare" machine in
        let r =
          Hypertp.Api.transplant_shadow ~rng:(Sim.Rng.create seed) ~fault
            ~src ~spare ~target ()
        in
        let alive = Hv.Host.vm_count src + Hv.Host.vm_count spare in
        Format.printf "%-24s %-12s %d/%-8d %a%s@."
          (Fault.site_to_string site) "shadow" alive vms
          Hypertp.Migrate.pp_shadow_strategy r.Hypertp.Migrate.sh_strategy
          (if r.Hypertp.Migrate.sh_source_intact then ""
           else " [SOURCE DAMAGED]"))
      Fault.shadow_sites;
    Format.printf
      "@.cluster-level sites (exercised by 'campaign --fault' and 'cluster \
       --fault-sweep', not per-transplant): %s@."
      (String.concat ", " (List.map Fault.site_to_string Fault.cluster_sites));
    Format.printf
      "control-plane sites (exercised by 'controlplane --fault' against the \
       hierarchical root/sub-controller supervisor): %s@."
      (String.concat ", "
         (List.map Fault.site_to_string Fault.controlplane_sites));
    Format.printf
      "stream sites (exercised by 'serve --fault' against the CVE-stream \
       campaign service): %s@."
      (String.concat ", " (List.map Fault.site_to_string Fault.stream_sites));
    if sweep then begin
      Format.printf "@.cluster sweep (10x10, host-crash probability):@.";
      Format.printf "%-6s %-9s %-10s %-10s %-10s %s@." "p" "failures"
        "in-place" "drained" "recovered" "total";
      List.iter
        (fun (p, (t : Cluster.Upgrade.faulty_timing)) ->
          Format.printf "%-6.2f %-9d %-10d %-10d %-10d %a@." p
            (List.length t.Cluster.Upgrade.failures)
            t.Cluster.Upgrade.vms_inplace_ok
            t.Cluster.Upgrade.vms_migrated_fallback
            t.Cluster.Upgrade.vms_recovered Sim.Time.pp
            t.Cluster.Upgrade.total_with_faults)
        (Cluster.Upgrade.sweep_faulty ~seed
           ~probabilities:[ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ]
           ())
    end
  in
  Cmd.v
    (Cmd.info "fault-campaign"
       ~doc:"Exhaustive fault-injection campaign: one transplant per \
             injection site, printing the outcome and VM survival")
    Term.(const run $ machine_arg $ source_arg $ target_arg $ vms_arg
          $ vcpus_arg $ gib_arg $ seed_arg $ sweep $ list_flag)

(* --- campaign --- *)

let campaign_cmd =
  let nodes =
    Arg.(value & opt int 10 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let per_node =
    Arg.(value & opt int 10
         & info [ "vms-per-node" ] ~docv:"N" ~doc:"VMs per node.")
  in
  let fraction =
    Arg.(value & opt float 1.0
         & info [ "inplace-fraction" ] ~docv:"F"
             ~doc:"Share of VMs tolerating InPlaceTP downtime.")
  in
  let concurrency =
    Arg.(value & opt int Cluster.Campaign.default_config.Cluster.Campaign.concurrency
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"Hosts upgraded in parallel (clamped by spare capacity).")
  in
  let straggler =
    Arg.(value & opt float
           Cluster.Campaign.default_config.Cluster.Campaign.straggler_factor
         & info [ "straggler-factor" ] ~docv:"F"
             ~doc:"Escalate a host attempt after F x its expected duration.")
  in
  let breaker_window =
    Arg.(value & opt int
           Cluster.Campaign.default_config.Cluster.Campaign.breaker_window
         & info [ "breaker-window" ] ~docv:"K"
             ~doc:"Circuit-breaker rolling window (last K attempts).")
  in
  let breaker_threshold =
    Arg.(value & opt float
           Cluster.Campaign.default_config.Cluster.Campaign.breaker_threshold
         & info [ "breaker-threshold" ] ~docv:"F"
             ~doc:"Trip when failures/K reaches F.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 120.0
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:"Pause admission for this long after a trip.")
  in
  let shadow_spares =
    Arg.(value & opt int
           Cluster.Campaign.default_config.Cluster.Campaign.shadow_spares
         & info [ "shadow-spares" ] ~docv:"N"
             ~doc:"Staged spare lanes for the shadow-cutover rung of the \
                   degradation ladder (0 disables the rung; journals are \
                   then byte-identical to pre-shadow campaigns).")
  in
  let topology =
    topology_arg
      ~doc:"Run a region-sharded fleet campaign over this topology instead \
            of a single cluster ($(b,--nodes)/$(b,--vms-per-node) are \
            ignored).  SPEC is $(b,RxHxV) (R regions of H hosts x V VMs) or \
            $(b,name:hosts:vms[:spares[:wire]];...).  Prints the \
            schedule-independent fleet report; $(b,--journal) then writes \
            the concatenated per-region journals."
  in
  let shard_mode =
    Arg.(value & opt (some shard_mode_conv) None
         & info [ "mode"; "shards" ] ~docv:"MODE"
             ~doc:"Shard schedule for $(b,--topology): $(b,seq), \
                   $(b,rotated:K) or $(b,parallel:SxD) (S shards on D \
                   domains).  Results are byte-identical across modes; only \
                   wall-clock changes.")
  in
  let journal_file =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Write the campaign journal here (crash or success).")
  in
  let resume_from =
    Arg.(value & opt (some string) None
         & info [ "resume-from" ] ~docv:"PATH"
             ~doc:"Resume a crashed campaign from this journal (cluster \
                   shape and knobs come from the journal; pass the same \
                   $(b,--fault) specs as the original run).")
  in
  let sweep =
    Arg.(value & opt (some (list float)) None
         & info [ "sweep" ] ~docv:"P1,P2,..."
             ~doc:"Run one campaign per host-crash probability instead of a \
                   single campaign.")
  in
  let run () nodes vms_per_node fraction concurrency straggler breaker_window
      breaker_threshold breaker_cooldown shadow_spares topology shard_mode
      seed specs journal_file resume_from sweep trace_out metrics_out =
    let config =
      {
        Cluster.Campaign.default_config with
        Cluster.Campaign.nodes;
        vms_per_node;
        inplace_fraction = fraction;
        concurrency;
        straggler_factor = straggler;
        breaker_window;
        breaker_threshold;
        breaker_cooldown = Sim.Time.of_sec_f breaker_cooldown;
        shadow_spares;
        seed;
      }
    in
    let fault = fault_of_specs specs in
    let write_journal j =
      match journal_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Cluster.Campaign.journal_to_string j);
        close_out oc;
        Format.printf "journal (%d entries) written to %s@."
          (Cluster.Campaign.journal_length j) path
    in
    match topology with
    | Some tp ->
      if sweep <> None || resume_from <> None then begin
        Format.eprintf
          "campaign: --topology is incompatible with --sweep and \
           --resume-from@.";
        exit 1
      end;
      let fr =
        Cluster.Campaign.run_fleet ?fault ?sharding:shard_mode ~topology:tp
          config
      in
      Format.printf "%a@." Cluster.Campaign.pp_fleet fr;
      (match journal_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Cluster.Campaign.fleet_journals_to_string fr);
        close_out oc;
        Format.printf "fleet journals written to %s@." path)
    | None -> (
      if shard_mode <> None then begin
        Format.eprintf "campaign: --mode requires --topology@.";
        exit 1
      end;
      match sweep with
    | Some probabilities ->
      Format.printf "%-6s %-10s %-9s %-9s %-8s %s@." "p" "wall" "exposed-hh"
        "deferred" "trips" "statuses";
      List.iter
        (fun (p, (r : Cluster.Campaign.report)) ->
          let count s =
            List.length
              (List.filter
                 (fun h -> h.Cluster.Campaign.hr_status = s)
                 r.Cluster.Campaign.hosts)
          in
          Format.printf "%-6.2f %-10s %-9.3f %-9d %-8d %d/%d/%d/%d/%d@." p
            (Sim.Time.to_string r.Cluster.Campaign.wall_clock)
            r.Cluster.Campaign.exposed_host_hours
            (List.length r.Cluster.Campaign.deferred)
            r.Cluster.Campaign.breaker_trips
            (count Cluster.Campaign.Upgraded_inplace)
            (count Cluster.Campaign.Shadow_cutover)
            (count Cluster.Campaign.Drained)
            (count Cluster.Campaign.Deferred_resolved)
            (count Cluster.Campaign.Deferred_exposed))
        (Cluster.Campaign.sweep ~config ~probabilities ())
    | None -> (
      let obs, metrics = obs_of_paths trace_out metrics_out in
      let result =
        match resume_from with
        | Some path ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let raw = really_input_string ic len in
          close_in ic;
          (match Cluster.Campaign.journal_of_string raw with
          | Ok j -> Cluster.Campaign.resume ?fault ?obs ?metrics j
          | Error e ->
            Format.eprintf "cannot resume: %s@." e;
            exit 1)
        | None -> Cluster.Campaign.run ?fault ?obs ?metrics config
      in
      match result with
      | Cluster.Campaign.Finished (r, j) ->
        Format.printf "%a@." Cluster.Campaign.pp_report r;
        List.iter
          (fun h -> Format.printf "  %a@." Cluster.Campaign.pp_host_record h)
          r.Cluster.Campaign.hosts;
        write_journal j;
        write_obs trace_out metrics_out obs metrics
      | Cluster.Campaign.Crashed j ->
        Format.printf
          "controller crashed after %d journaled events; resume with \
           --resume-from@."
          (Cluster.Campaign.journal_length j);
        write_journal j;
        write_obs trace_out metrics_out obs metrics))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a supervised rolling-transplant campaign on the event \
             engine: admission control, straggler deadlines, degradation \
             ladder, circuit breaker, checkpoint/resume")
    Term.(const run $ verbose_arg $ nodes $ per_node $ fraction $ concurrency
          $ straggler $ breaker_window $ breaker_threshold $ breaker_cooldown
          $ shadow_spares $ topology $ shard_mode $ seed_arg $ fault_arg
          $ journal_file $ resume_from $ sweep $ trace_out_arg
          $ metrics_out_arg)

(* --- controlplane --- *)

let controlplane_cmd =
  let module CP = Cluster.Controlplane in
  let d = CP.default_config in
  let regions =
    Arg.(value & opt int d.CP.regions
         & info [ "regions" ] ~docv:"N"
             ~doc:"Regions, each run by its own sub-controller.")
  in
  let hosts_per_region =
    Arg.(value & opt int d.CP.hosts_per_region
         & info [ "hosts-per-region" ] ~docv:"N" ~doc:"Hosts per region.")
  in
  let vms_per_host =
    Arg.(value & opt int d.CP.vms_per_host
         & info [ "vms-per-host" ] ~docv:"N"
             ~doc:"VMs riding through each in-place upgrade.")
  in
  let concurrency =
    Arg.(value & opt int d.CP.global_concurrency
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"Fleet-wide admission budget, split across regions and \
                   reallocated as regions finish.")
  in
  let straggler =
    Arg.(value & opt float d.CP.straggler_factor
         & info [ "straggler-factor" ] ~docv:"F"
             ~doc:"Escalate a host attempt after F x its expected duration.")
  in
  let breaker_window =
    Arg.(value & opt int d.CP.breaker_window
         & info [ "breaker-window" ] ~docv:"K"
             ~doc:"Per-region circuit-breaker rolling window.")
  in
  let breaker_threshold =
    Arg.(value & opt float d.CP.breaker_threshold
         & info [ "breaker-threshold" ] ~docv:"F"
             ~doc:"Trip a region's breaker when failures/K reaches F.")
  in
  let breaker_cooldown =
    Arg.(value & opt float (Sim.Time.to_sec_f d.CP.breaker_cooldown)
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:"Pause a region's admission for this long after a trip.")
  in
  let hb_every =
    Arg.(value & opt float (Sim.Time.to_sec_f d.CP.heartbeat_every)
         & info [ "hb-every" ] ~docv:"SECONDS"
             ~doc:"Sub-controller heartbeat period.")
  in
  let hb_timeout =
    Arg.(value & opt float (Sim.Time.to_sec_f d.CP.heartbeat_timeout)
         & info [ "hb-timeout" ] ~docv:"SECONDS"
             ~doc:"The root declares a sub-controller dead after this much \
                   heartbeat silence and rebuilds it from its journal.")
  in
  let realloc_lag =
    Arg.(value & opt float (Sim.Time.to_sec_f d.CP.realloc_lag)
         & info [ "realloc-lag" ] ~docv:"SECONDS"
             ~doc:"Lease delay before a finished region's admission slots \
                   take effect elsewhere; must be at least hb-timeout + 2 x \
                   hb-every.")
  in
  let topology =
    topology_arg
      ~doc:"Take the region grid from this topology spec ($(b,RxHxV) or \
            $(b,name:hosts:vms;...)) instead of \
            $(b,--regions)/$(b,--hosts-per-region)/$(b,--vms-per-host).  \
            Must be uniform: every region the same hosts x VMs."
  in
  let bundle_file =
    Arg.(value & opt (some string) None
         & info [ "bundle" ] ~docv:"PATH"
             ~doc:"Write the region journals (the leader-handoff bundle) \
                   here, on success or on a root crash.")
  in
  let resume_from =
    Arg.(value & opt (some string) None
         & info [ "resume-from" ] ~docv:"PATH"
             ~doc:"Leader handoff: rebuild the global view from this bundle \
                   and drive the campaign to completion.  Pass the same \
                   host-site $(b,--fault) specs (and seed) as the crashed \
                   run; control-plane triggers (root_crash, ...) are not \
                   cursor-tracked and may be dropped so the new leader does \
                   not die the same death.")
  in
  let timeline =
    Arg.(value & flag
         & info [ "timeline" ]
             ~doc:"Print the merged journal (all regions, one line per \
                   entry) after the run.")
  in
  let run () regions hosts_per_region vms_per_host concurrency straggler
      breaker_window breaker_threshold breaker_cooldown hb_every hb_timeout
      realloc_lag topology seed specs bundle_file resume_from timeline
      trace_out metrics_out =
    let config =
      {
        CP.regions;
        hosts_per_region;
        vms_per_host;
        global_concurrency = concurrency;
        straggler_factor = straggler;
        breaker_window;
        breaker_threshold;
        breaker_cooldown = Sim.Time.of_sec_f breaker_cooldown;
        jitter_pct = d.CP.jitter_pct;
        drain_flakiness = d.CP.drain_flakiness;
        heartbeat_every = Sim.Time.of_sec_f hb_every;
        heartbeat_timeout = Sim.Time.of_sec_f hb_timeout;
        realloc_lag = Sim.Time.of_sec_f realloc_lag;
        seed;
      }
    in
    let config =
      match topology with
      | Some tp -> CP.config_of_topology tp config
      | None -> config
    in
    let fault = fault_of_specs specs in
    let obs, metrics = obs_of_paths trace_out metrics_out in
    let write_bundle b =
      match bundle_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (CP.bundle_to_string b);
        close_out oc;
        Format.printf "bundle (%d entries across %d regions) written to %s@."
          (CP.bundle_length b) (CP.bundle_config b).CP.regions path
    in
    let result =
      match resume_from with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let raw = really_input_string ic len in
        close_in ic;
        (match CP.bundle_of_string raw with
        | Ok b -> CP.resume ?fault ?obs ?metrics b
        | Error e ->
          Format.eprintf "cannot resume: %s@." e;
          exit 1)
      | None -> CP.run ?fault ?obs ?metrics config
    in
    match result with
    | CP.Finished (r, b) ->
      print_string (CP.summary r);
      if timeline then print_string (CP.merged_to_string b);
      write_bundle b;
      write_obs trace_out metrics_out obs metrics
    | CP.Crashed b ->
      Format.printf
        "root supervisor died with %d journaled events; hand off with \
         --resume-from@."
        (CP.bundle_length b);
      write_bundle b;
      write_obs trace_out metrics_out obs metrics;
      exit 2
  in
  Cmd.v
    (Cmd.info "controlplane"
       ~doc:"Run the replicated hierarchical control plane: regional \
             sub-controllers with private journals under a root supervisor \
             with heartbeat detection; survives sub-controller crashes, \
             supervision partitions, root crashes and crashes during resume \
             with a byte-identical final report")
    Term.(const run $ verbose_arg $ regions $ hosts_per_region $ vms_per_host
          $ concurrency $ straggler $ breaker_window $ breaker_threshold
          $ breaker_cooldown $ hb_every $ hb_timeout $ realloc_lag $ topology
          $ seed_arg $ fault_arg $ bundle_file $ resume_from $ timeline
          $ trace_out_arg $ metrics_out_arg)

(* --- serve --- *)

let serve_cmd =
  let module S = Stream.Service in
  let d = S.default_config in
  let years =
    Arg.(value & opt float d.S.years
         & info [ "years" ] ~docv:"Y"
             ~doc:"Virtual years of CVE traffic to serve.")
  in
  let hosts =
    Arg.(value & opt int (d.S.mix.S.xen_hosts + d.S.mix.S.kvm_hosts)
         & info [ "hosts" ] ~docv:"N"
             ~doc:"Xen+KVM fleet size, split evenly (Xen gets the odd host).")
  in
  let bhyve_hosts =
    Arg.(value & opt int d.S.mix.S.bhyve_hosts
         & info [ "bhyve-hosts" ] ~docv:"N"
             ~doc:"Hosts whose home hypervisor is bhyve, on top of \
                   $(b,--hosts).")
  in
  let vms_per_host =
    Arg.(value & opt int d.S.vms_per_host
         & info [ "vms-per-host" ] ~docv:"N"
             ~doc:"VMs riding through each host transplant.")
  in
  let rate =
    Arg.(value & opt float d.S.rate_per_year
         & info [ "rate" ] ~docv:"R"
             ~doc:"Mean CVE arrivals per year across the taxonomy classes.")
  in
  let policy_conv =
    let parse s =
      match Stream.Policy.kind_of_string s with
      | Some k -> Ok k
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown policy %S (expected %s)" s
                (String.concat "|"
                   (List.map Stream.Policy.kind_to_string
                      Stream.Policy.all_kinds))))
    in
    Arg.conv (parse, Stream.Policy.pp_kind)
  in
  let policy =
    Arg.(value & opt policy_conv d.S.policy
         & info [ "policy" ] ~docv:"KIND"
             ~doc:"Mitigation policy: $(b,cost-aware), $(b,transplant-all) \
                   or $(b,defer-all).")
  in
  let tempo =
    Arg.(value & opt float d.S.tempo
         & info [ "tempo" ] ~docv:"F"
             ~doc:"Operational stretch: one simulated campaign second \
                   occupies F calendar seconds (maintenance windows, soak \
                   gates).")
  in
  let concurrency =
    Arg.(value & opt int d.S.concurrency
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"Hosts upgraded in parallel within a campaign.")
  in
  let batch_days =
    Arg.(value & opt float d.S.batch_days
         & info [ "batch-days" ] ~docv:"D"
             ~doc:"Admission tick: arrivals are drained every D virtual \
                   days.")
  in
  let preempt =
    Arg.(value & flag
         & info [ "preempt" ]
             ~doc:"Let every critical arrival preempt in-flight campaigns \
                   on its population (otherwise only the \
                   $(b,campaign_preempt) fault site does).")
  in
  let topology =
    topology_arg
      ~doc:"Take the host populations from this topology's regions, mapped \
            by name onto the repertoire (e.g. $(b,xen:20:4;kvm:16:4)); \
            overrides $(b,--hosts)/$(b,--bhyve-hosts)/$(b,--vms-per-host) \
            (the VM density comes from the first region)."
  in
  let journal_file =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Write the service journal here (crash or success).")
  in
  let resume_from =
    Arg.(value & opt (some string) None
         & info [ "resume-from" ] ~docv:"PATH"
             ~doc:"Resume a crashed service from this journal (config and \
                   seed come from the journal; pass the same $(b,--fault) \
                   specs as the original run).")
  in
  let run () years hosts bhyve_hosts vms_per_host topology rate policy tempo
      concurrency batch_days preempt seed specs journal_file resume_from
      trace_out metrics_out =
    let mix, vms_per_host =
      match topology with
      | Some tp ->
        ( S.mix_of_topology tp,
          (Cluster.Topology.regions tp).(0).Cluster.Topology.rg_vms_per_host )
      | None ->
        ( { S.xen_hosts = (hosts + 1) / 2;
            kvm_hosts = hosts / 2;
            bhyve_hosts },
          vms_per_host )
    in
    let config =
      {
        d with
        S.years;
        mix;
        vms_per_host;
        rate_per_year = rate;
        policy;
        tempo;
        concurrency;
        batch_days;
        preempt;
        seed;
      }
    in
    let fault = fault_of_specs specs in
    let obs, metrics = obs_of_paths trace_out metrics_out in
    let write_journal j =
      match journal_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (S.journal_to_string j);
        close_out oc;
        Format.printf "journal (%d entries) written to %s@."
          (S.journal_length j) path
    in
    let result =
      match resume_from with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let raw = really_input_string ic len in
        close_in ic;
        (match S.journal_of_string raw with
        | Ok j -> S.resume ?fault ?obs ?metrics j
        | Error e ->
          Format.eprintf "cannot resume: %s@." e;
          exit 1)
      | None -> S.run ?fault ?obs ?metrics config
    in
    match result with
    | S.Finished (r, j) ->
      Format.printf "%a@." S.pp_report r;
      write_journal j;
      write_obs trace_out metrics_out obs metrics;
      if r.S.uncovered_critical > 0 then begin
        Format.eprintf
          "serve: %d critical windows stayed uncovered though a campaign \
           was cheaper@."
          r.S.uncovered_critical;
        exit 2
      end
    | S.Crashed j ->
      Format.printf
        "service crashed after %d journaled events; resume with \
         --resume-from@."
        (S.journal_length j);
      write_journal j;
      write_obs trace_out metrics_out obs metrics;
      exit 3
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the CVE-stream campaign service: a seeded multi-year \
             vulnerability stream against a static fleet, with cost-aware \
             per-CVE decisions, contention-safe campaign booking, \
             preemption and a crash-survivable journal (exit 2 if any \
             critical window stayed uncovered though a campaign was \
             cheaper, 3 on a controller crash)")
    Term.(const run $ verbose_arg $ years $ hosts $ bhyve_hosts
          $ vms_per_host $ topology $ rate $ policy $ tempo $ concurrency
          $ batch_days $ preempt $ seed_arg $ fault_arg $ journal_file
          $ resume_from $ trace_out_arg $ metrics_out_arg)

(* --- fleet --- *)

let fleet_cmd =
  let id =
    Arg.(value & pos 0 string "CVE-2016-6258"
         & info [] ~docv:"CVE-ID" ~doc:"The disclosed vulnerability.")
  in
  let hosts =
    Arg.(value & opt int 8 & info [ "hosts" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let topology =
    topology_arg
      ~doc:"Region-aware fleet shape ($(b,RxHxV) or \
            $(b,name:hosts:vms;...)); overrides $(b,--hosts) and sets each \
            host's VM density from its region."
  in
  let run id hosts topology =
    let o = Cluster.Fleet.simulate ~hosts ?topology ~cve_id:id () in
    Array.iter
      (fun (at, ev) ->
        match ev with
        | Cluster.Fleet.Disclosed id ->
          Format.printf "%8.0fs  disclosed %s@." (Sim.Time.to_sec_f at) id
        | Cluster.Fleet.Host_transplanted { host; to_hv; downtime } ->
          Format.printf "%8.0fs  %s -> %s (downtime %a)@."
            (Sim.Time.to_sec_f at) host to_hv Sim.Time.pp downtime
        | Cluster.Fleet.Patch_released ->
          Format.printf "%8.0fs  patch released@." (Sim.Time.to_sec_f at)
        | Cluster.Fleet.Host_patched { host; downtime } ->
          Format.printf "%8.0fs  %s patched (downtime %a)@."
            (Sim.Time.to_sec_f at) host Sim.Time.pp downtime)
      o.Cluster.Fleet.events;
    Format.printf "%a@." Cluster.Fleet.pp_outcome o
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Simulate the Fig. 1 vulnerability-window timeline on a fleet")
    Term.(const run $ id $ hosts $ topology)

(* --- verify --- *)

let verify_cmd =
  let file =
    Arg.(value & opt (some string) None
         & info [ "file"; "f" ] ~docv:"PATH"
             ~doc:"UISR blob to verify; omit to verify a freshly generated \
                   one (seeded).")
  in
  let corrupt =
    let sections =
      [ ("vm_info", Uisr.Codec.tag_vm_info); ("vcpu", Uisr.Codec.tag_vcpu);
        ("ioapic", Uisr.Codec.tag_ioapic); ("pit", Uisr.Codec.tag_pit);
        ("devices", Uisr.Codec.tag_devices); ("memmap", Uisr.Codec.tag_memmap) ]
    in
    Arg.(value & opt (some (enum sections)) None
         & info [ "corrupt" ] ~docv:"SECTION"
             ~doc:"Flip a payload byte in that section before verifying \
                   (demonstrates salvage vs quarantine).")
  in
  let run file corrupt seed =
    let blob =
      match file with
      | Some path ->
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        close_in ic;
        b
      | None -> Integrity.Gen.blob ~seed ()
    in
    let blob =
      match corrupt with
      | None -> blob
      | Some tag -> Uisr.Codec.corrupt_section ~tag blob
    in
    let report = Uisr.Codec.decode_verified blob in
    Format.printf "%a@." Uisr.Integrity.pp_report report;
    match report.Uisr.Integrity.verdict with
    | Uisr.Integrity.Intact | Uisr.Integrity.Salvaged _ -> ()
    | Uisr.Integrity.Rejected _ -> exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the salvage decoder over a UISR blob and print its \
             integrity report (exit 1 on a quarantine verdict)")
    Term.(const run $ file $ corrupt $ seed_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let cases =
    Arg.(value & opt int 500
         & info [ "cases" ] ~docv:"N" ~doc:"Mutated payloads to run.")
  in
  let run cases vcpus seed =
    let stats = Integrity.Fuzz.run ~vcpus ~seed ~cases () in
    Format.printf "%a@." Integrity.Fuzz.pp stats;
    if not (Integrity.Fuzz.ok stats) then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Seeded corruption campaign against the salvage decoder (exit 1 \
             if any mutant raises or is accepted as pristine)")
    Term.(const run $ cases $ vcpus_arg $ seed_arg)

let () =
  let info =
    Cmd.info "hypertp-cli" ~version:"1.0.0"
      ~doc:"HyperTP: hypervisor transplant simulator (EuroSys'21 reproduction)"
  in
  (* ~catch:false so structured simulator errors reach our handler and
     render uniformly instead of as cmdliner backtraces. *)
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group info
            [ cve_cmd; inplace_cmd; migrate_cmd; shadow_cmd; audit_cmd;
              memsep_cmd; cluster_cmd; campaign_cmd; controlplane_cmd;
              respond_cmd; fleet_cmd; serve_cmd; snapshot_cmd; fault_campaign_cmd;
              verify_cmd; fuzz_cmd ]))
  with Hypertp.Error.Error e ->
    Format.eprintf "hypertp-cli: %s@." (Hypertp.Error.to_string e);
    exit 3
