(** Typed frame numbers.

    A {e machine frame number} (MFN) indexes 4 KiB frames of host physical
    memory; a {e guest frame number} (GFN) indexes 4 KiB frames of a guest
    physical address space.  Keeping them as distinct abstract types makes
    it impossible to feed a guest address to the host allocator — the
    class of confusion the PRAM structure exists to manage. *)

module type S = sig
  type t

  val of_int : int -> t
  (** Raises [Invalid_argument] on negative input. *)

  val to_int : t -> int
  val add : t -> int -> t
  val offset : t -> t -> int
  (** [offset a b] is [a - b] in frames. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Mfn : S
module Gfn : S
