(* Tests for the supervised campaign controller: admission model,
   degradation ladder, circuit breaker, straggler deadlines, and the
   checkpoint/resume journal (crash-then-resume determinism). *)

module C = Cluster.Campaign

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let close ?(eps = 1e-6) msg expected actual =
  checkb
    (Printf.sprintf "%s (expected %.6f, got %.6f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let finished = function
  | C.Finished (r, j) -> (r, j)
  | C.Crashed _ -> Alcotest.fail "campaign crashed without a fault plan"

(* --- Admission-concurrency model --- *)

(* With jitter off and no faults, the campaign is exactly a greedy list
   schedule of the per-host expected times over [effective_concurrency]
   lanes, plus the rebalance tail.  This pins the breaker-free
   wall-clock to the admission model. *)
let list_schedule_makespan lanes durations =
  let free = Array.make lanes Sim.Time.zero in
  List.iter
    (fun d ->
      let best = ref 0 in
      Array.iteri
        (fun i t -> if Sim.Time.compare t free.(!best) < 0 then best := i)
        free;
      free.(!best) <- Sim.Time.add free.(!best) d)
    durations;
  Array.fold_left
    (fun a b -> if Sim.Time.compare a b >= 0 then a else b)
    Sim.Time.zero free

let test_wall_clock_matches_admission_model () =
  List.iter
    (fun concurrency ->
      let cfg = { C.default_config with C.concurrency; jitter_pct = 0.0 } in
      let r, _ = finished (C.run cfg) in
      checki "no breaker trips" 0 r.C.breaker_trips;
      checkb "no deferred hosts" true (r.C.deferred = []);
      let expected =
        Sim.Time.add
          (list_schedule_makespan r.C.effective_concurrency
             (List.map (fun h -> h.C.hr_expected) r.C.hosts))
          r.C.rebalance_time
      in
      checkb
        (Printf.sprintf "wall clock = %d-lane list schedule" concurrency)
        true
        (Sim.Time.compare r.C.wall_clock expected = 0))
    [ 1; 3; 4 ]

let test_clean_run_pinned () =
  let r, j = finished (C.run C.default_config) in
  (* 10 hosts x 10 VMs, fully in-place, concurrency 4: ceil(10/4) = 3
     admission waves of ~19.2 s each. *)
  close ~eps:0.05 "wall clock (pinned)" 57.652
    (Sim.Time.to_sec_f r.C.wall_clock);
  checki "journal: admit + complete per host, plus finish" 21
    (C.journal_length j);
  checki "all VMs ride in place" 100 r.C.vms_inplace_ok;
  checki "accounting closes" r.C.vms_total (C.vms_accounted r);
  checkb "every host upgraded in place" true
    (List.for_all (fun h -> h.C.hr_status = C.Upgraded_inplace) r.C.hosts);
  (* Baseline = all hosts exposed for the whole campaign; the rolling
     schedule retires exposure as each wave lands, so the integral sits
     strictly inside (0, baseline). *)
  checkb "supervised exposure strictly inside (0, baseline)" true
    (r.C.exposed_host_hours > 0.0
    && r.C.exposed_host_hours < r.C.baseline_exposed_host_hours)

let test_config_validation () =
  let bad msg cfg =
    checkb msg true
      (try
         ignore (C.run cfg);
         false
       with Hypertp.Error.Error e -> e.Hypertp.Error.site = "Campaign")
  in
  bad "zero concurrency" { C.default_config with C.concurrency = 0 };
  bad "straggler factor below floor"
    { C.default_config with C.straggler_factor = 1.0 };
  bad "jitter above cap" { C.default_config with C.jitter_pct = 0.5 };
  bad "threshold above 1" { C.default_config with C.breaker_threshold = 1.5 }

(* --- Degradation ladder --- *)

let one_shot site = Fault.make ~seed:11L [ { Fault.site; trigger = Fault.Nth_hit 1 } ]

let count_events pred hosts =
  List.fold_left
    (fun acc h ->
      acc + List.length (List.filter (fun (_, e) -> pred e) h.C.hr_timeline))
    0 hosts

let sturdy = { C.default_config with C.drain_flakiness = 0.0 }

let test_crash_falls_back_to_drain () =
  let r = C.run_to_completion ~fault:(one_shot Fault.Host_crash) sturdy in
  let failed = List.filter (fun h -> h.C.hr_manifestations <> []) r.C.hosts in
  (match failed with
  | [ h ] ->
    checkb "manifested as a crash" true (h.C.hr_manifestations = [ C.Crash ]);
    checkb "fell back to a drain" true (h.C.hr_status = C.Drained);
    checki "two attempts (inplace, drain)" 2 h.C.hr_attempts
  | _ -> Alcotest.fail "exactly one host should fail");
  checki "accounting closes" r.C.vms_total (C.vms_accounted r);
  checkb "nothing deferred" true (r.C.deferred = [])

let test_straggler_timeout_escalates () =
  let r = C.run_to_completion ~fault:(one_shot Fault.Host_timeout) sturdy in
  checki "one straggler cancellation" 1
    (count_events (fun e -> e = C.Straggler_cancelled) r.C.hosts);
  let h =
    List.find (fun h -> h.C.hr_manifestations <> []) r.C.hosts
  in
  checkb "manifested as a timeout" true (h.C.hr_manifestations = [ C.Timeout ]);
  checkb "timeout host drained" true (h.C.hr_status = C.Drained);
  checkb "cancellation recorded on the straggler itself" true
    (List.exists (fun (_, e) -> e = C.Straggler_cancelled) h.C.hr_timeline)

let test_flap_not_double_counted () =
  let r = C.run_to_completion ~fault:(one_shot Fault.Host_flap) sturdy in
  (* A flap is fail/recover/fail inside ONE attempt: one Flap_failure
     leg plus one terminal Attempt_failed, but only one manifestation
     and one breaker-window entry. *)
  checki "one flap leg" 1 (count_events (fun e -> e = C.Flap_failure) r.C.hosts);
  checki "one terminal failure" 1
    (count_events
       (function C.Attempt_failed _ -> true | _ -> false)
       r.C.hosts);
  let h = List.find (fun h -> h.C.hr_manifestations <> []) r.C.hosts in
  checkb "counted once" true (h.C.hr_manifestations = [ C.Flap ]);
  checki "one inplace attempt then the drain" 2 h.C.hr_attempts

let test_deferred_exposure_iff_ladder_exhausted () =
  (* Every rung fails: inplace crashes, the drain is flaky, the
     end-of-campaign retry is flaky too.  Every deferred host must
     accrue exposure; no deferral means none does. *)
  let doomed =
    {
      C.default_config with
      C.drain_flakiness = 1.0;
      retry_flakiness = 1.0;
      breaker_cooldown = Sim.Time.of_sec_f 5.0;
    }
  in
  let fault =
    Fault.make ~seed:3L
      [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 1.0 } ]
  in
  let r = C.run_to_completion ~fault doomed in
  checki "all hosts deferred" doomed.C.nodes (List.length r.C.deferred);
  checkb "deferred set accrues exposure" true (r.C.deferred_exposure_hours > 0.0);
  checkb "each deferred host exposed for the whole campaign" true
    (List.for_all
       (fun h ->
         h.C.hr_status = C.Deferred_exposed
         && h.C.hr_exposure_hours > 0.0
         && Sim.Time.compare h.C.hr_done_at r.C.wall_clock = 0)
       r.C.hosts);
  checki "no VM upgraded" 0 r.C.vms_inplace_ok;
  checki "every VM parked on a deferred host" r.C.vms_total
    (r.C.vms_on_deferred + r.C.vms_migrated_planned);
  checki "accounting still closes" r.C.vms_total (C.vms_accounted r);
  (* And the converse: a clean campaign defers nothing and its deferred
     exposure is exactly zero. *)
  let clean, _ = finished (C.run C.default_config) in
  checkb "no deferral, no deferred exposure" true
    (clean.C.deferred = [] && clean.C.deferred_exposure_hours = 0.0)

(* --- Circuit breaker --- *)

let test_breaker_pinned () =
  let sweep = C.sweep ~probabilities:[ 0.0; 0.9 ] () in
  let r0 = List.assoc 0.0 sweep and r9 = List.assoc 0.9 sweep in
  checki "p=0 never trips" 0 r0.C.breaker_trips;
  checkb "p=0.9 trips the breaker" true (r9.C.breaker_trips > 0);
  (* Breaker events are campaign-level, not host-level: they never
     appear on host timelines, only in the trip counter. *)
  checki "breaker events stay off host timelines" 0
    (count_events (fun e -> e = C.Breaker_opened) r9.C.hosts);
  checkb "faulty campaign takes longer" true
    (Sim.Time.compare r9.C.wall_clock r0.C.wall_clock > 0)

let test_sweep_monotone_serial () =
  (* Failure sets are nested across probabilities (shared seed, one
     draw per armed hit), so with serial admission the wall-clock is
     monotone in p.  (At concurrency > 1 list-scheduling anomalies can
     legally reorder lanes, so the property is stated serially.) *)
  let config = { C.default_config with C.concurrency = 1 } in
  let probabilities = [ 0.0; 0.2; 0.5; 0.8; 1.0 ] in
  let sweep = C.sweep ~config ~probabilities () in
  let walls = List.map (fun (_, r) -> r.C.wall_clock) sweep in
  checkb "serial wall clock monotone in p" true
    (List.for_all2
       (fun a b -> Sim.Time.compare a b <= 0)
       walls
       (List.tl walls @ [ List.nth walls (List.length walls - 1) ]));
  List.iter
    (fun (p, r) ->
      checki
        (Printf.sprintf "accounting closes at p=%.1f" p)
        r.C.vms_total (C.vms_accounted r))
    sweep

(* --- Checkpoint / resume --- *)

let base_injections p =
  [
    { Fault.site = Fault.Host_crash; trigger = Fault.Probability p };
    { Fault.site = Fault.Host_timeout; trigger = Fault.Probability (p /. 2.0) };
    { Fault.site = Fault.Host_flap; trigger = Fault.Probability (p /. 3.0) };
  ]

let rec complete ~fault = function
  | C.Finished (r, _) -> r
  | C.Crashed journal -> complete ~fault (C.resume ~fault journal)

let test_resume_determinism_qcheck () =
  let gen =
    QCheck.(
      triple (int_range 0 1000) (oneofl [ 0.15; 0.35; 0.6; 0.9 ])
        (int_range 1 45))
  in
  let prop (seed, p, crash_after) =
    let fault_seed = Int64.of_int (seed * 7919) in
    let cfg = { C.default_config with C.seed = Int64.of_int seed } in
    let plain () = Fault.make ~seed:fault_seed (base_injections p) in
    let crashing () =
      Fault.make ~seed:fault_seed
        (base_injections p
        @ [ { Fault.site = Fault.Controller_crash;
              trigger = Fault.Nth_hit crash_after } ])
    in
    let uninterrupted = complete ~fault:(plain ()) (C.run ~fault:(plain ()) cfg) in
    let resumed =
      match C.run ~fault:(crashing ()) cfg with
      | C.Finished (r, _) -> r (* crashed later than the campaign ended *)
      | C.Crashed journal ->
        (* The journal survives serialisation, and resuming from the
           parsed text continues to the same report. *)
        let text = C.journal_to_string journal in
        let journal' =
          match C.journal_of_string text with
          | Ok j -> j
          | Error e -> QCheck.Test.fail_reportf "journal round-trip: %s" e
        in
        checki "round-trip preserves length" (C.journal_length journal)
          (C.journal_length journal');
        complete ~fault:(crashing ()) (C.resume ~fault:(crashing ()) journal')
    in
    if uninterrupted <> resumed then
      QCheck.Test.fail_reportf
        "crash-then-resume diverged (seed=%d p=%.2f crash_after=%d)" seed p
        crash_after;
    C.vms_accounted resumed = resumed.C.vms_total
  in
  let t =
    QCheck.Test.make ~count:25 ~name:"resume determinism" gen prop
  in
  QCheck.Test.check_exn t

let test_resume_rejects_mismatched_fault () =
  let crashing =
    Fault.make ~seed:5L
      (base_injections 0.9
      @ [ { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 6 } ])
  in
  match C.run ~fault:crashing C.default_config with
  | C.Finished _ -> Alcotest.fail "controller crash never fired"
  | C.Crashed journal ->
    checkb "mismatched fault plan is rejected" true
      (try
         ignore
           (C.resume
              ~fault:(Fault.make ~seed:5L [])
              journal);
         false
       with Hypertp.Error.Error e ->
         e.Hypertp.Error.site = "Campaign.resume")

let test_journal_parse_errors () =
  let reject s =
    match C.journal_of_string s with
    | Ok _ -> Alcotest.failf "accepted garbage: %S" s
    | Error e -> checkb "error is descriptive" true (String.length e > 0)
  in
  reject "";
  reject "not a journal";
  reject "hypertp-campaign-journal v99\n"

let suites =
  [
    ( "campaign.admission",
      [
        Alcotest.test_case "wall clock = admission model" `Quick
          test_wall_clock_matches_admission_model;
        Alcotest.test_case "clean run (pinned)" `Quick test_clean_run_pinned;
        Alcotest.test_case "config validation" `Quick test_config_validation;
      ] );
    ( "campaign.ladder",
      [
        Alcotest.test_case "crash -> drain" `Quick test_crash_falls_back_to_drain;
        Alcotest.test_case "straggler timeout" `Quick
          test_straggler_timeout_escalates;
        Alcotest.test_case "flap counted once" `Quick test_flap_not_double_counted;
        Alcotest.test_case "deferred exposure iff exhausted" `Quick
          test_deferred_exposure_iff_ladder_exhausted;
      ] );
    ( "campaign.breaker",
      [
        Alcotest.test_case "trips pinned" `Quick test_breaker_pinned;
        Alcotest.test_case "serial sweep monotone" `Quick test_sweep_monotone_serial;
      ] );
    ( "campaign.journal",
      [
        Alcotest.test_case "resume determinism (qcheck)" `Slow
          test_resume_determinism_qcheck;
        Alcotest.test_case "mismatched fault rejected" `Quick
          test_resume_rejects_mismatched_fault;
        Alcotest.test_case "parse errors" `Quick test_journal_parse_errors;
      ] );
  ]
