type result = {
  delivered_mb : float;
  stall_s : float;
  buffer_low_s : float;
}

let stream ~rng ~sched ~duration_s ?(client_buffer_s = 10.0) () =
  (* Step the client buffer at 100 ms granularity: the server refills it
     at the scheduled rate, playback drains it at 1 s/s. *)
  let dt = 0.1 in
  let steps = int_of_float (duration_s /. dt) in
  let buffer = ref client_buffer_s in
  let stall = ref 0.0 in
  let low = ref 0.0 in
  let delivered = ref 0.0 in
  let bitrate_mbps = Profile.streaming_mbps Profile.P_xen in
  for i = 0 to steps - 1 do
    let at = float_of_int i *. dt in
    let rate = Sched.rate_factor sched at ~base:Profile.streaming_mbps in
    let refill_ratio = if bitrate_mbps > 0.0 then rate /. bitrate_mbps else 0.0 in
    (* The server streams slightly faster than real time when healthy so
       the buffer refills after gaps. *)
    let refill = refill_ratio *. 1.25 *. dt *. Sim.Rng.jitter rng 0.02 in
    delivered := !delivered +. (rate *. dt /. 8.0);
    buffer := Float.min client_buffer_s (!buffer +. refill);
    (* Playback drains the buffer. *)
    if !buffer >= dt then buffer := !buffer -. dt
    else begin
      stall := !stall +. (dt -. !buffer);
      buffer := 0.0
    end;
    if !buffer < client_buffer_s /. 2.0 then low := !low +. dt
  done;
  { delivered_mb = !delivered; stall_s = !stall; buffer_low_s = !low }
