(* Supervised rolling-transplant campaign: the operator's view of a
   fleet remediation.  The campaign controller runs the BtrPlace plan on
   the discrete-event engine with bounded concurrency, straggler
   deadlines, a degradation ladder (InPlaceTP -> MigrationTP drain ->
   defer), a circuit breaker, and a journal that survives controller
   crashes.

   Run with: dune exec examples/campaign_supervisor.exe *)

let () =
  Format.printf "=== HyperTP campaign supervisor ===@.@.";

  (* 1. A clean campaign: nothing fails, the breaker never trips, and
     the wall-clock is the admission-limited makespan of the host
     tasks. *)
  Format.printf "--- fault-free campaign ---@.";
  (match Cluster.Campaign.run Cluster.Campaign.default_config with
  | Cluster.Campaign.Finished (r, _) ->
    Format.printf "%a@.@." Cluster.Campaign.pp_report r
  | Cluster.Campaign.Crashed _ -> assert false);

  (* 2. Hosts crash, hang and flap.  Failed in-place upgrades fall back
     to a MigrationTP drain; failed drains are deferred (the host stays
     exposed) and retried at campaign end.  Repeated failures trip the
     breaker, which pauses admission and resumes at half concurrency. *)
  Format.printf "--- faulty campaign: crash/timeout/flap injection ---@.";
  let faults () =
    Fault.make ~seed:7L
      [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.4 };
        { Fault.site = Fault.Host_timeout; trigger = Fault.Probability 0.15 };
        { Fault.site = Fault.Host_flap; trigger = Fault.Probability 0.15 } ]
  in
  let report =
    Cluster.Campaign.run_to_completion ~fault:(faults ())
      Cluster.Campaign.default_config
  in
  Format.printf "%a@." Cluster.Campaign.pp_report report;
  List.iter
    (fun h -> Format.printf "  %a@." Cluster.Campaign.pp_host_record h)
    report.Cluster.Campaign.hosts;
  Format.printf "@.";

  (* 3. Kill the controller itself mid-campaign.  Every host-level
     event was journaled, so resuming from the journal replays the
     prefix and finishes with a report identical to the uninterrupted
     run above. *)
  Format.printf "--- controller crash + resume from the journal ---@.";
  let crashing =
    Fault.make ~seed:7L
      (Fault.injections (faults ())
      @ [ { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 12 } ])
  in
  (match Cluster.Campaign.run ~fault:crashing Cluster.Campaign.default_config with
  | Cluster.Campaign.Finished _ -> assert false
  | Cluster.Campaign.Crashed journal ->
    Format.printf "controller died after %d journaled events@."
      (Cluster.Campaign.journal_length journal);
    let text = Cluster.Campaign.journal_to_string journal in
    Format.printf "journal is plain text (%d bytes); first lines:@."
      (String.length text);
    List.iteri
      (fun i line -> if i < 4 then Format.printf "  | %s@." line)
      (String.split_on_char '\n' text);
    let journal' =
      match Cluster.Campaign.journal_of_string text with
      | Ok j -> j
      | Error e -> failwith e
    in
    (match Cluster.Campaign.resume ~fault:(faults ()) journal' with
    | Cluster.Campaign.Finished (resumed, _) ->
      Format.printf "resumed -> identical report: %b@."
        (resumed = report)
    | Cluster.Campaign.Crashed _ -> assert false));
  Format.printf "@.";

  (* 4. The exposure trade-off across failure probabilities: more
     failures mean more drains, deferrals and breaker pauses — the
     vulnerability window (exposed host-hours) grows accordingly. *)
  Format.printf "--- campaign sweep: host-crash probability ---@.";
  List.iter
    (fun (p, (r : Cluster.Campaign.report)) ->
      Format.printf
        "p=%.2f  wall %-10s exposed %6.3f host-hours, %d deferred, %d trips@."
        p
        (Sim.Time.to_string r.Cluster.Campaign.wall_clock)
        r.Cluster.Campaign.exposed_host_hours
        (List.length r.Cluster.Campaign.deferred)
        r.Cluster.Campaign.breaker_trips)
    (Cluster.Campaign.sweep ~probabilities:[ 0.0; 0.3; 0.7 ] ())
