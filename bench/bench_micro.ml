(* Bechamel micro-benchmarks: real CPU cost of the core data paths
   (UISR encode/decode, native formats, PRAM build/parse, pre-copy
   planning, CVSS scoring). *)

open Bechamel
open Toolkit

let sample_uisr () =
  let pmem = Hw.Pmem.create ~frames:(512 * 128) () in
  let vm =
    Vmstate.Vm.create ~pmem ~rng:(Sim.Rng.create 1L)
      ~ioapic_pins:Vmstate.Ioapic.xen_pins
      (Vmstate.Vm.config ~name:"b" ~vcpus:2 ~ram:(Hw.Units.mib 256) ())
  in
  Vmstate.Vm.pause vm;
  (vm, Uisr.Vm_state.of_vm ~source_hypervisor:"xen-4.12.1" vm)

let tests () =
  let vm, uisr = sample_uisr () in
  let blob = Uisr.Codec.encode uisr in
  let platform =
    {
      Xenhv.Hvm_records.vcpus = Array.to_list vm.Vmstate.Vm.vcpus;
      ioapic = vm.Vmstate.Vm.ioapic;
      pit = vm.Vmstate.Vm.pit;
    }
  in
  let native = Xenhv.Hvm_records.encode platform in
  let memmap = Uisr.Vm_state.memmap_of_guest_mem vm.Vmstate.Vm.mem in
  let venom_vector =
    match Cve.Cvss.parse "AV:N/AC:L/Au:N/C:C/I:C/A:C" with
    | Ok v -> v
    | Error _ -> assert false
  in
  let precopy_params =
    Migration.Precopy.default_params ~nic:(Hw.Nic.create ~bandwidth_gbps:1.0 ()) ()
  in
  let audit_machine = Hw.Machine.m1 () in
  let audit_host =
    Hypertp.Api.provision ~name:"bench-audit" ~machine:audit_machine
      ~hv:Hv.Kind.Kvm
      [ Vmstate.Vm.config ~name:"a0" ~ram:(Hw.Units.mib 256) () ]
  in
  let audit_ref =
    Audit.reference_of_fresh_boot ~machine:audit_machine
      (module Kvmhv.Kvm : Hv.Intf.S)
  in
  let audit_src =
    Audit.reference_of_fresh_boot ~machine:audit_machine
      (module Xenhv.Xen : Hv.Intf.S)
  in
  let audit_world = Audit.world audit_host in
  let audit_report =
    Audit.run ~reference:audit_ref ~source:audit_src audit_world
  in
  let audit_serialized = Audit.to_string audit_report in
  [
    Test.make ~name:"uisr_encode" (Staged.stage (fun () -> Uisr.Codec.encode uisr));
    Test.make ~name:"uisr_decode" (Staged.stage (fun () -> Uisr.Codec.decode blob));
    Test.make ~name:"xen_hvm_encode"
      (Staged.stage (fun () -> Xenhv.Hvm_records.encode platform));
    Test.make ~name:"xen_hvm_decode"
      (Staged.stage (fun () -> Xenhv.Hvm_records.decode native));
    Test.make ~name:"pram_build_parse"
      (Staged.stage (fun () ->
           let pmem = Hw.Pmem.create ~frames:(512 * 128) () in
           let mem =
             Vmstate.Guest_mem.create ~pmem ~rng:(Sim.Rng.create 2L)
               ~bytes:(Hw.Units.mib 64) ~page_kind:Hw.Units.Page_2m ()
           in
           let image =
             Pram.Build.build ~pmem ~granularity:Hw.Units.Page_2m
               [ ("v", Hw.Units.mib 64, Uisr.Vm_state.memmap_of_guest_mem mem) ]
           in
           Pram.Parse.parse ~pmem ~image (Pram.Build.pointer_mfn image)));
    Test.make ~name:"pram_entry_pack"
      (Staged.stage (fun () ->
           List.map
             (fun e ->
               List.map Pram.Entry.pack
                 (Pram.Entry.of_memmap_entry ~granularity:Hw.Units.Page_2m e))
             memmap));
    Test.make ~name:"precopy_plan"
      (Staged.stage (fun () ->
           Migration.Precopy.plan precopy_params ~page_bytes:4096
             ~total_pages:262144 ~dirty_pages_per_sec:2000.0));
    Test.make ~name:"cvss_base_score"
      (Staged.stage (fun () -> Cve.Cvss.base_score venom_vector));
    Test.make ~name:"audit_sweep"
      (Staged.stage (fun () ->
           Audit.run ~reference:audit_ref ~source:audit_src audit_world));
    Test.make ~name:"audit_report_roundtrip"
      (Staged.stage (fun () -> Audit.of_string audit_serialized));
  ]

let run () =
  Format.printf "@.=== Bechamel micro-benchmarks (real CPU time) ===@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"hypertp" (tests ()))
  in
  let results =
    List.map (fun inst -> Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) inst raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _measure table ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Format.printf "%-32s %12.1f ns/run@." name est
          | Some _ | None -> Format.printf "%-32s (no estimate)@." name)
        table)
    results
