test/test_vmstate.ml: Alcotest Array Hw Int64 List QCheck QCheck_alcotest Sim Vmstate
