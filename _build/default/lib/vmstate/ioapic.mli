(** IOAPIC (per-VM interrupt routing).

    Xen implements a 48-pin virtual IOAPIC, KVM a 24-pin one; during
    Xen->KVM transplant the upper 24 pins are disconnected (paper,
    section 4.2.1).  The pin count is therefore part of the state. *)

type redirection = {
  vector : int;
  delivery_mode : int;
  dest_mode : int;
  polarity : int;
  trigger_mode : int;
  masked : bool;
  dest : int;
}

type t = {
  id : int;
  pins : redirection array;
}

val xen_pins : int (* 48 *)
val kvm_pins : int (* 24 *)

val generate : Sim.Rng.t -> pins:int -> t
val equal : t -> t -> bool

val pin_count : t -> int

val truncate : t -> pins:int -> t * int
(** [truncate io ~pins] keeps the first [pins] redirections; the second
    component is the number of {e connected} (unmasked) pins that were
    dropped — the compatibility loss logged as a fixup.  Raises
    [Invalid_argument] if [pins] exceeds the current pin count. *)

val extend : t -> pins:int -> t
(** Pad with masked, disconnected redirections up to [pins]. *)

val connected_pins : t -> int
val pp : Format.formatter -> t -> unit
