type file = {
  file_name : string;
  file_size : Hw.Units.bytes_;
  file_mode : int;
  entries : Entry.t list;
}

type image = {
  pointer : Hw.Frame.Mfn.t;
  pages : (int, bytes) Hashtbl.t; (* metadata frame -> 4 KiB content *)
  extents : (Hw.Frame.Mfn.t * int) list;
  built_files : file list;
  file_mfns : Hw.Frame.Mfn.t list; (* file-info page per VM, build order *)
  acct : Layout.accounting;
}

let sentinel = 0x5052414D5F4D4554L (* "PRAM_MET" *)

(* Per-page CRC32 slot.  Bytes 4-7 are free in every page kind (the
   kind byte sits at 0, counts at 2, links at 8), so the checksum can
   live at the same offset everywhere.  A stored 0 means "unstamped"
   (pre-CRC builds), which parsers accept for compatibility. *)
let crc_offset = 4

let page_crc page =
  let saved = Bytes.get_int32_le page crc_offset in
  Bytes.set_int32_le page crc_offset 0l;
  let crc = Uisr.Wire.crc32 page in
  Bytes.set_int32_le page crc_offset saved;
  crc

let stored_crc page = Bytes.get_int32_le page crc_offset

let stamp_crc page =
  Bytes.set_int32_le page crc_offset 0l;
  Bytes.set_int32_le page crc_offset (Uisr.Wire.crc32 page)

(* Page type bytes, first byte of every metadata page. *)
let byte_pointer = 0xA1
let byte_root = 0xA2
let byte_file = 0xA3
let byte_node = 0xA4

let alloc_page pmem =
  match Hw.Pmem.alloc_extents pmem 1 with
  | [ (mfn, 1) ] -> mfn
  | _ -> assert false (* a single-frame request is one extent *)

let new_page image pmem kind_byte =
  let mfn = alloc_page pmem in
  let page = Bytes.make Layout.page_bytes '\000' in
  Bytes.set_uint8 page 0 kind_byte;
  Hashtbl.replace image.pages (Hw.Frame.Mfn.to_int mfn) page;
  Hw.Pmem.write pmem mfn sentinel;
  Hw.Pmem.reserve_extent pmem mfn 1;
  mfn

let set_u64 page off v = Bytes.set_int64_le page off v
let mfn_u64 mfn = Int64.of_int (Hw.Frame.Mfn.to_int mfn)

(* Node chain for one file: pages of packed entries, each page headed by
   (kind byte, entry count u16 at offset 2, next-node mfn u64 at 8). *)
let write_node_chain image pmem entries =
  let groups =
    let rec split acc current count = function
      | [] -> List.rev (List.rev current :: acc)
      | e :: rest when count = Layout.entries_per_node ->
        split (List.rev current :: acc) [ e ] 1 rest
      | e :: rest -> split acc (e :: current) (count + 1) rest
    in
    split [] [] 0 entries
  in
  (* Build back-to-front so each page knows its successor. *)
  let rec emit = function
    | [] -> Hw.Frame.Mfn.of_int 0 (* null *)
    | group :: rest ->
      let next = emit rest in
      let mfn = new_page image pmem byte_node in
      let page = Hashtbl.find image.pages (Hw.Frame.Mfn.to_int mfn) in
      Bytes.set_uint16_le page 2 (List.length group);
      set_u64 page 8 (mfn_u64 next);
      List.iteri
        (fun i e -> set_u64 page (Layout.node_header_bytes + (8 * i)) (Entry.pack e))
        group;
      mfn
  in
  emit groups

let write_file_info image pmem (f : file) =
  let mfn = new_page image pmem byte_file in
  let first_node = write_node_chain image pmem f.entries in
  let page = Hashtbl.find image.pages (Hw.Frame.Mfn.to_int mfn) in
  set_u64 page 8 (Int64.of_int f.file_size);
  Bytes.set_uint16_le page 16 f.file_mode;
  set_u64 page 24 (mfn_u64 first_node);
  let name = f.file_name in
  let name =
    if String.length name > 255 then String.sub name 0 255 else name
  in
  Bytes.set_uint8 page 32 (String.length name);
  Bytes.blit_string name 0 page 33 (String.length name);
  mfn

let write_roots image pmem file_mfns =
  let groups =
    let rec split acc current count = function
      | [] -> List.rev (List.rev current :: acc)
      | m :: rest when count = Layout.file_pointers_per_root ->
        split (List.rev current :: acc) [ m ] 1 rest
      | m :: rest -> split acc (m :: current) (count + 1) rest
    in
    split [] [] 0 file_mfns
  in
  let rec emit = function
    | [] -> Hw.Frame.Mfn.of_int 0
    | group :: rest ->
      let next = emit rest in
      let mfn = new_page image pmem byte_root in
      let page = Hashtbl.find image.pages (Hw.Frame.Mfn.to_int mfn) in
      Bytes.set_uint16_le page 2 (List.length group);
      set_u64 page 8 (mfn_u64 next);
      List.iteri (fun i m -> set_u64 page (16 + (8 * i)) (mfn_u64 m)) group;
      mfn
  in
  emit groups

let build ~pmem ~granularity vms =
  if vms = [] then invalid_arg "Pram.Build.build: no VMs";
  let built_files =
    List.map
      (fun (name, size, memmap) ->
        {
          file_name = name;
          file_size = size;
          file_mode = 0o600;
          entries = List.concat_map (Entry.of_memmap_entry ~granularity) memmap;
        })
      vms
  in
  let acct =
    Layout.account
      ~entries_per_file:(List.map (fun f -> List.length f.entries) built_files)
  in
  let image =
    {
      pointer = Hw.Frame.Mfn.of_int 0;
      pages = Hashtbl.create 64;
      extents = [];
      built_files;
      file_mfns = [];
      acct;
    }
  in
  let file_mfns = List.map (write_file_info image pmem) built_files in
  let first_root = write_roots image pmem file_mfns in
  let pointer = new_page image pmem byte_pointer in
  let page = Hashtbl.find image.pages (Hw.Frame.Mfn.to_int pointer) in
  set_u64 page 8 (mfn_u64 first_root);
  (* Seal every page with its checksum once all links are written. *)
  Hashtbl.iter (fun _ page -> stamp_crc page) image.pages;
  let extents =
    Hashtbl.fold
      (fun frame _ acc -> (Hw.Frame.Mfn.of_int frame, 1) :: acc)
      image.pages []
  in
  { image with pointer; extents; file_mfns }

let pointer_mfn image = image.pointer
let files image = image.built_files
let file_info_mfns image = image.file_mfns

let corrupt_file image ~index =
  match List.nth_opt image.file_mfns index with
  | None -> invalid_arg "Pram.Build.corrupt_file: no such file"
  | Some mfn ->
    let page = Hashtbl.find image.pages (Hw.Frame.Mfn.to_int mfn) in
    (* Flip a byte inside the file-name area: the kind byte, links and
       counts stay plausible, so only the page CRC can catch it.  The
       pmem sentinel is untouched — this is in-page bit-rot, not a
       scrub. *)
    let i = 40 in
    Bytes.set_uint8 page i (Bytes.get_uint8 page i lxor 0xFF);
    mfn
let accounting image = image.acct
let metadata_extents image = image.extents

let page_content image mfn =
  Hashtbl.find_opt image.pages (Hw.Frame.Mfn.to_int mfn)

let preserve_predicate image =
  (* Binary search over sorted (start, stop) extents: the predicate runs
     once per allocated frame during the micro-reboot, so it must be
     cheap even for multi-GiB guests. *)
  let ranges =
    List.concat_map
      (fun f ->
        List.map
          (fun e ->
            let base = Hw.Frame.Mfn.to_int e.Entry.mfn in
            (base, base + Entry.frames e))
          f.entries)
      image.built_files
  in
  let ranges = Array.of_list ranges in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) ranges;
  let in_guest frame =
    let lo = ref 0 and hi = ref (Array.length ranges - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let start, stop = ranges.(mid) in
      if frame < start then hi := mid - 1
      else if frame >= stop then lo := mid + 1
      else found := true
    done;
    !found
  in
  fun mfn ->
    let frame = Hw.Frame.Mfn.to_int mfn in
    Hashtbl.mem image.pages frame || in_guest frame

let release image ~pmem =
  List.iter
    (fun (mfn, len) ->
      Hw.Pmem.unreserve_extent pmem mfn len;
      Hw.Pmem.free_extent pmem mfn len)
    image.extents;
  Hashtbl.reset image.pages
