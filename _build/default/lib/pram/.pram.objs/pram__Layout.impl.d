lib/pram/layout.ml: Format Hw List
