lib/core/memsep.ml: Format Hv Hw List Vmstate
