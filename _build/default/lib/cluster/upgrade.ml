type timing = {
  migration_count : int;
  inplace_vm_count : int;
  migration_time : Sim.Time.t;
  upgrade_tail : Sim.Time.t;
  total : Sim.Time.t;
}

(* Per-action setup: BtrPlace/Nova round-trips, pre-migration checks,
   storage hand-off.  Calibrated so a ~150-migration plan lands near the
   paper's "up to 19 minutes". *)
let migration_setup = Sim.Time.of_sec_f 3.5

let migration_op_time ~nic ~(vm : Model.vm) =
  let params = Migration.Precopy.default_params ~nic () in
  let plan =
    Migration.Precopy.plan params ~page_bytes:Hw.Units.page_size_4k
      ~total_pages:(Hw.Units.frames_of_bytes vm.Model.ram)
      ~dirty_pages_per_sec:
        (Workload.Profile.dirty_pages_per_sec vm.Model.workload
           ~ram:vm.Model.ram ~page_kind:Hw.Units.Page_2m)
  in
  Sim.Time.sum
    [ migration_setup; plan.Migration.Precopy.precopy_time;
      plan.Migration.Precopy.stop_copy_time ]

let inplace_host_time ~vms =
  (* kexec into the target on a G5K node + per-VM translate/restore.
     Host-level, not per-VM downtime: boot dominates. *)
  let machine = Hw.Machine.g5k_node () in
  let boot = Xenhv.Xen.boot_time ~machine in
  Sim.Time.add boot (Sim.Time.of_sec_f (0.4 *. float_of_int vms))

let reboot_host_time = Sim.Time.sec 60 (* firmware + full kernel boot *)

let execute ~nic (plan : Btrplace.plan) =
  let migration_time = ref Sim.Time.zero in
  let last_upgrade = ref Sim.Time.zero in
  List.iter
    (fun action ->
      match action with
      | Btrplace.Migrate { vm; _ } ->
        migration_time := Sim.Time.add !migration_time (migration_op_time ~nic ~vm)
      | Btrplace.Upgrade_inplace { vms_in_place; _ } ->
        last_upgrade :=
          (if vms_in_place > 0 then inplace_host_time ~vms:vms_in_place
           else reboot_host_time)
      | Btrplace.Take_offline _ | Btrplace.Bring_online _ -> ())
    plan.Btrplace.actions;
  {
    migration_count = plan.Btrplace.migration_count;
    inplace_vm_count = plan.Btrplace.inplace_vm_count;
    migration_time = !migration_time;
    upgrade_tail = !last_upgrade;
    total = Sim.Time.add !migration_time !last_upgrade;
  }

let sweep ?(nodes = 10) ?(vms_per_node = 10) ~fractions () =
  let nic = Hw.Nic.create ~bandwidth_gbps:10.0 () in
  List.map
    (fun fraction ->
      let model =
        Model.make ~nodes ~vms_per_node ~vm_ram:(Hw.Units.gib 4)
          ~node_ram:(Hw.Units.gib 96) ~inplace_fraction:fraction
          ~workload_mix:
            [ (Vmstate.Vm.Wl_streaming, 0.3); (Vmstate.Vm.Wl_spec "mcf", 0.3);
              (Vmstate.Vm.Wl_idle, 0.4) ]
          ()
      in
      let plan = Btrplace.plan_upgrade model in
      assert (Btrplace.capacity_safe model);
      (fraction, execute ~nic plan))
    fractions

let pp_timing fmt t =
  Format.fprintf fmt
    "%d migrations (%a) + %d VMs in place (tail %a) => total %a"
    t.migration_count Sim.Time.pp t.migration_time t.inplace_vm_count
    Sim.Time.pp t.upgrade_tail Sim.Time.pp t.total
