bench/bench_tables.ml: Bench_util Cve Float Format Hv Hw Hypertp Int64 List Sim Vmstate Workload Xenhv
