(** Unified run context for engine entry points.

    [Ctx.t] bundles the five cross-cutting knobs that every engine
    used to take as separate optional arguments:

    - [options] — InPlaceTP optimisation toggles ({!Options.t})
    - [rng] — deterministic random stream ([None] = engine default)
    - [fault] — fault-injection plan
    - [obs] — span tracer
    - [metrics] — metrics registry

    Thread one [?ctx] value through {!Api.transplant_inplace},
    {!Api.transplant_migration}, {!Api.respond_to_cve}, {!Inplace.run},
    {!Migrate.run}, [Upgrade.*] and [Campaign.run]/[resume] instead of
    repeating the argument list.  The old per-argument forms still work
    (deprecated): when both are given, the explicit legacy argument
    overrides the corresponding [ctx] field, and either spelling
    produces byte-identical reports, traces and metrics for the same
    seed (pinned by the Ctx-equivalence tests). *)

type audit_config = {
  audit_scrub : bool;
      (** scrub-and-recheck on findings (default); [false] reports the
          findings but leaves the residue in place *)
}

val audit_default : audit_config
(** Scrub enabled. *)

type shadow_config = {
  shadow_ladder : bool;
      (** walk the strategy-degradation ladder on a pre-swap abort
          (shadow -> classic MigrationTP -> defer, the default);
          [false] turns every abort into a defer — the source keeps its
          VMs and the exposure is accounted, nothing else runs *)
}

val shadow_default : shadow_config
(** Ladder enabled. *)

type sharding = Sim.Shard.mode =
  | Sequential
  | Rotated of int
  | Parallel of { shards : int; domains : int }
(** Region-shard schedule for fleet-level entry points
    ({!Sim.Shard.mode}, re-exported so call sites can write
    [Ctx.Parallel {shards; domains}]).  All modes are byte-identical
    for the same seed; the knob only trades wall-clock. *)

type t = {
  options : Options.t;
  rng : Sim.Rng.t option;
  fault : Fault.t option;
  obs : Obs.Tracer.t option;
  metrics : Obs.Metrics.t option;
  audit : audit_config option;
      (** [Some _] arms the post-commit residual audit rung in
          {!Inplace.run} and {!Migrate.run}; [None] (the default) skips
          it entirely, so default runs stay byte-identical to previous
          releases *)
  shadow : shadow_config option;
      (** shadow-host cutover policy for {!Migrate.run_shadow}; [None]
          (the default) means {!shadow_default} *)
  sharding : sharding;
      (** region-shard schedule for fleet entry points
          ([Campaign.run_fleet] and the sharded benchmarks);
          [Sequential] is the default and what every legacy entry
          point resolves to, pinned byte-identical *)
}

val default : t
(** [Options.default] and no rng/fault/obs/metrics/audit — exactly the
    behaviour of calling an entry point with no optional arguments. *)

val make :
  ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> ?audit:audit_config ->
  ?shadow:shadow_config -> ?sharding:sharding -> unit -> t

val with_options : Options.t -> t -> t
val with_rng : Sim.Rng.t -> t -> t
val with_fault : Fault.t -> t -> t
val with_obs : Obs.Tracer.t -> t -> t
val with_metrics : Obs.Metrics.t -> t -> t
val with_audit : audit_config -> t -> t
val with_shadow : shadow_config -> t -> t
val with_sharding : sharding -> t -> t

val resolve :
  ?ctx:t -> ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> ?audit:audit_config ->
  ?shadow:shadow_config -> ?sharding:sharding -> unit -> t
(** Merge legacy optional arguments over [ctx] (default {!default});
    an explicit legacy argument wins over the [ctx] field.  Engines
    call this once at their boundary. *)
