(** Canonical pretty-printing for located diagnostics.

    The salvage decoder ({!Integrity}), the wire reader's structured
    [Bad_format] errors ({!Wire.Reader}) and the residual-state
    auditor ([Audit]) all report findings of the shape {e severity,
    subject, optional byte offset, reason}.  This module is the single
    renderer, so offsets always read ["at byte N"] (the form DESIGN.md
    documents) instead of the historical mix of ["+N"] and
    ["at byte N"]. *)

val pp :
  Format.formatter -> label:string -> subject:string -> ?offset:int ->
  string -> unit
(** [pp fmt ~label ~subject ?offset reason] renders
    ["[label] subject at byte N: reason"], omitting the offset clause
    when [offset] is [None].  [label] is a severity word (["fatal"],
    ["salvageable"], ["exploitable"], ...). *)

val pp_location : Format.formatter -> ?section:int -> int -> unit
(** ["at byte N"], or ["at byte N in section 0xT"] when the section
    tag is known. *)

val location_to_string : ?section:int -> int -> string
