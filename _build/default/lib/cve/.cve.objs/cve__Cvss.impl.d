lib/cve/cvss.ml: Float Format List Printf Result String
