examples/quickstart.ml: Cve Format Hv Hw Hypertp List Sim Uisr Vmstate
