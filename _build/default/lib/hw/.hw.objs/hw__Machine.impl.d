lib/hw/machine.ml: Cpu Format Nic Pmem Sim Stdlib Units
