(* Fault injection: abort, rollback, recovery and retry across the two
   transplant mechanisms, plus the cluster-level failure-probability
   sweep.

   Run with: dune exec examples/fault_injection.exe *)

let fresh_host () =
  Hypertp.Api.provision ~name:"host0" ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Xen
    [ Vmstate.Vm.config ~name:"vm0" ~workload:Vmstate.Vm.Wl_redis ();
      Vmstate.Vm.config ~name:"vm1" () ]

let () =
  Format.printf "=== HyperTP fault injection ===@.@.";

  (* 1. A fault before the point of no return: the transplant aborts
     and rolls back — VMs resume on Xen, memory provably untouched. *)
  Format.printf "--- pre-PNR fault: uisr_encode on vm1 ---@.";
  let host = fresh_host () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Uisr_encode; trigger = Fault.On_vm "vm1" } ]
  in
  let r = Hypertp.Api.transplant_inplace ~fault ~host ~target:Hv.Kind.Kvm () in
  Format.printf "%a@." Hypertp.Inplace.pp_report r;
  Format.printf "host still runs: %s@.@." (Hv.Host.hypervisor_name host);

  (* 2. A fault after the point of no return: the source hypervisor is
     gone, so the ReHype-style ladder recovers on the target side. *)
  Format.printf "--- post-PNR fault: vm_restore (first hit) ---@.";
  let host = fresh_host () in
  let fault =
    Fault.make [ { Fault.site = Fault.Vm_restore; trigger = Fault.Nth_hit 1 } ]
  in
  let r = Hypertp.Api.transplant_inplace ~fault ~host ~target:Hv.Kind.Kvm () in
  Format.printf "%a@." Hypertp.Inplace.pp_report r;
  Format.printf "host now runs: %s@.@." (Hv.Host.hypervisor_name host);

  (* 3. MigrationTP under a flaky link: drop the first attempt, retry
     with backoff, complete on the second. *)
  Format.printf "--- migration link drop + retry ---@.";
  let src = fresh_host () in
  let dst =
    Hypertp.Api.provision ~name:"dst" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm []
  in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Migration_link_drop; trigger = Fault.Nth_hit 1 } ]
  in
  let r = Hypertp.Api.transplant_migration ~fault ~src ~dst () in
  Format.printf "%a@.@." Hypertp.Migrate.pp_report r;

  (* 4. The cluster-level question: how much wall-clock does a given
     per-host failure probability add to a rolling upgrade, and does
     every VM survive?  (It does — by migration fallback or recovery.) *)
  Format.printf "--- cluster sweep: host-crash probability ---@.";
  List.iter
    (fun (p, t) ->
      Format.printf "p=%.2f  %a@." p Cluster.Upgrade.pp_faulty_timing t)
    (Cluster.Upgrade.sweep_faulty ~probabilities:[ 0.0; 0.25; 0.5 ] ())
