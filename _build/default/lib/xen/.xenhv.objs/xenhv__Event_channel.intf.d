lib/xen/event_channel.mli:
