lib/migration/precopy.mli: Format Hw Sim Vmstate
