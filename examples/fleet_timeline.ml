(* Fleet-level vulnerability-window timeline (Fig. 1): a critical Xen
   CVE is disclosed, the fleet transplants onto a safe hypervisor within
   the hour, and transplants back when the patch ships days later.

   Run with: dune exec examples/fleet_timeline.exe *)

let () =
  Format.printf "=== fleet vulnerability-window timeline ===@.@.";
  let cve_id = "CVE-2016-6258" in
  (match Cve.Nvd.find cve_id with
  | Some r ->
    Format.printf "incident: %a@." Cve.Nvd.pp_record r;
    (match r.window_days with
    | Some d -> Format.printf "documented patch window: %d days@.@." d
    | None -> ())
  | None -> assert false);

  let outcome = Cluster.Fleet.simulate ~hosts:6 ~vms_per_host:3 ~cve_id () in

  Format.printf "--- timeline ---@.";
  Array.iter
    (fun (at, ev) ->
      let t = Sim.Time.to_sec_f at in
      let stamp =
        if t < 3600.0 then Printf.sprintf "t+%4.0fs " t
        else Printf.sprintf "t+%5.1fd" (t /. 86400.0)
      in
      match ev with
      | Cluster.Fleet.Disclosed id ->
        Format.printf "%s  CVE %s disclosed; fleet is exposed@." stamp id
      | Cluster.Fleet.Host_transplanted { host; to_hv; downtime } ->
        Format.printf "%s  %s transplanted to %s (VM downtime %a)@." stamp
          host to_hv Sim.Time.pp downtime
      | Cluster.Fleet.Patch_released ->
        Format.printf "%s  patched Xen released@." stamp
      | Cluster.Fleet.Host_patched { host; downtime } ->
        Format.printf "%s  %s back on patched Xen (VM downtime %a)@." stamp
          host Sim.Time.pp downtime)
    outcome.events;

  Format.printf "@.--- outcome ---@.%a@." Cluster.Fleet.pp_outcome outcome;
  Format.printf
    "@.The window shrinks from the full patch latency to the rollout@.\
     stagger, at the price of a few seconds of downtime per VM per hop.@."
