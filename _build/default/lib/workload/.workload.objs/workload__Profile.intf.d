lib/workload/profile.mli: Format Hw Vmstate
