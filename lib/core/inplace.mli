(** InPlaceTP: in-place micro-reboot-based hypervisor transplant
    (sections 3.2 and 4.2).

    The seven-step workflow on a single host: stage the target's kernel,
    build PRAM while VMs run, pause, translate VM_i State to UISR,
    kexec into the target, parse PRAM at early boot, restore from UISR
    onto the untouched guest memory, rebuild management state, resume.

    The run both {e performs} the transplant on the simulated host
    (guest memory objects survive in place; the report's checks verify
    it) and {e accounts} each phase's virtual-time cost.

    The workflow is transactional around a single point of no return —
    the kexec jump.  A fault injected before it aborts the transplant:
    staging is discarded, every VM resumes on the source hypervisor,
    and the checks prove guest memory byte-identical.  A fault after it
    cannot abort (the source hypervisor is gone) and is instead handled
    by a ReHype-style recovery ladder: per-VM restore retries, UISR
    quarantine, management-state rebuild, and a last-resort full
    reboot. *)

type checks = {
  guest_memory_intact : bool;
      (** per-page checksums identical before/after; backing unclobbered *)
  pram_parse_ok : bool;
  kexec_image_intact : bool;
  uisr_roundtrip_ok : bool;   (** every UISR blob decoded to its source *)
  management_consistent : bool;
  platform_preserved : bool;  (** vCPU/PIT state identical modulo fixups *)
  devices_preserved : bool;   (** guest-visible device state (incl. TCP
                                  connections) survived unplug/rescan *)
}

val all_ok : checks -> bool

type recovery_detail = {
  recovery_faults : Fault.site list;
      (** distinct post-PNR sites that fired, in firing order *)
  restore_retries : int;  (** extra per-VM restore attempts across all VMs *)
  quarantined : string list;
      (** VMs not restored: UISR rejected, PRAM file damaged, or retries
          exhausted *)
  salvaged : (string * string list) list;
      (** VMs restored from a partially damaged UISR blob — every
          CRC-valid section recovered, damaged salvageable sections
          replaced with reset defaults — with the decoder's diagnostics;
          a rung {e above} quarantine on the recovery ladder *)
  mgmt_rebuilds : int;    (** extra management-rebuild passes *)
  full_reboot : bool;     (** last-resort full firmware reboot taken *)
  recovery_time : Sim.Time.t;
  audit_findings : int;
      (** residual findings flagged by the first post-commit audit sweep
          (0 when the audit was not armed or found nothing) *)
  audit_scrubbed : int;
      (** findings remediated by the scrub pass; a shortfall against
          [audit_findings] means the scrub failed or was disabled and
          the ladder escalated *)
}

type outcome =
  | Committed            (** fault-free end-to-end *)
  | Rolled_back of Fault.site
      (** pre-PNR fault: transplant aborted, VMs back on the source *)
  | Recovered of recovery_detail
      (** post-PNR fault(s) absorbed by the recovery ladder *)

type report = {
  source : string;
  target : string;
  vm_count : int;
  phases : Phases.t;
  fixups : (string * Uisr.Fixup.t list) list;
  uisr_platform_bytes : int; (** encoded platform UISR, all VMs *)
  pram_accounting : Pram.Layout.accounting;
  frames_wiped : int;
  checks : checks;
  outcome : outcome;
  audit : Audit.report option;
      (** final post-commit audit report when the audit rung was armed
          via {!Ctx.t.audit}: the recheck report if a scrub ran, the
          first sweep otherwise; [None] when unarmed or rolled back *)
}

val run :
  ?ctx:Ctx.t -> ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> host:Hv.Host.t ->
  target:(module Hv.Intf.S) -> unit -> report
(** Transplant every VM on [host] onto [target].  Pass the run knobs
    bundled as [?ctx] ({!Ctx.t}); the individual optional arguments are
    deprecated thin wrappers that override the corresponding [ctx]
    field (see {!Ctx.resolve}) and produce byte-identical output.

    On a committed or
    recovered run the host ends up running the target hypervisor with
    all surviving VMs resumed; on a rolled-back run it still runs the
    source with all VMs resumed.  [fault] arms an injection plan (see
    {!Fault}); omitted means fault-free.  Raises [Invalid_argument] if
    the host has no hypervisor or no VMs, or if the target is already
    the running hypervisor.

    [obs] records the run as a span tree on virtual time: a root
    [inplace] span, one [phase:*] span per {!Phases.t} field (using the
    report's exact durations, so {!Phases.of_trace} over the trace
    reconciles with [report.phases] to the tick), per-VM [restore:*]
    children under restoration, sequential [rung:*] children under
    recovery (restore retries, quarantine triage, salvage repairs,
    management rebuilds, full-reboot fallback), and instant events for
    pause / point-of-no-return / resume.  [metrics] accumulates
    [hypertp_phase_seconds], [hypertp_downtime_seconds],
    [hypertp_faults_total], [hypertp_recovery_rungs_total] and
    [hypertp_transplants_total].  Both default to off and cost nothing
    when absent.

    When [ctx] arms the audit ({!Ctx.t.audit}), a post-commit residual
    audit sweeps the target world against a fresh-boot reference after
    the VMs resume.  Findings trigger a scrub-and-recheck (unless
    [audit_scrub] is false); a scrub failure — the [scrub_fail] fault
    site, or residue the scrub cannot remediate — escalates to the
    full-reboot rung.  Any residue found forces the outcome to
    [Recovered] even if every other step was calm, and audit/scrub time
    is charged as [rung:audit] / [rung:scrub] recovery rungs, visible
    in both the phase accounting and the obs trace. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
