type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q1 : float;
  q3 : float;
}

let mean samples =
  match samples with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ ->
    let total = List.fold_left ( +. ) 0.0 samples in
    total /. float_of_int (List.length samples)

let stddev samples =
  match samples with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean samples in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sqrt (sq /. float_of_int (List.length samples - 1))

let percentile samples p =
  if samples = [] then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list samples in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let summarize samples =
  match samples with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    {
      n = List.length samples;
      mean = mean samples;
      stddev = stddev samples;
      min = List.fold_left Float.min Float.infinity samples;
      max = List.fold_left Float.max Float.neg_infinity samples;
      median = percentile samples 50.0;
      q1 = percentile samples 25.0;
      q3 = percentile samples 75.0;
    }

let low_variance s = s.mean = 0.0 || s.stddev /. Float.abs s.mean < 0.05

let pp_summary fmt s =
  Format.fprintf fmt "%.4g +/- %.2g [%.4g..%.4g] (n=%d)" s.mean s.stddev s.min
    s.max s.n

let pp_boxplot fmt s =
  Format.fprintf fmt "min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g (n=%d)" s.min
    s.q1 s.median s.q3 s.max s.n
