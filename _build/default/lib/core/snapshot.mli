(** Whole-VM snapshots: the "guest state saving" operation HyperTP adds
    to Nova's ComputeDriver (section 4.5.2), akin to suspend-to-disk.

    A snapshot bundles the UISR (platform + devices + metadata) with the
    guest memory image, CRC-framed.  Because the state half is UISR, a
    snapshot taken under one hypervisor restores under any other —
    suspend on Xen, resume on KVM. *)

type t

val capture : Hv.Host.t -> string -> t
(** Snapshot a VM by name (pauses it around the capture, leaves it in
    its prior run state).  Raises [Invalid_argument] on unknown VMs. *)

val vm_name : t -> string
val source_hypervisor : t -> string

val to_bytes : t -> bytes
val of_bytes : bytes -> (t, string) result
(** Decode a serialised snapshot; CRC and format violations reported. *)

val restore : t -> Hv.Host.t -> Uisr.Fixup.t list
(** Materialise the VM on a host (running any hypervisor): allocates
    fresh guest memory, replays the memory image, restores platform
    state through [from_uisr] and resumes.  Raises [Invalid_argument]
    if the name is already taken or memory does not fit. *)

val memory_bytes : t -> int
(** Size of the memory image section. *)
