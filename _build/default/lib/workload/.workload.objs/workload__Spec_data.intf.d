lib/workload/spec_data.mli: Profile
