(* Structured integrity verdicts for decoded UISR state, plus the
   semantic validator that runs behind [Codec.decode_verified].

   The envelope layer (magic, version, per-section CRCs) catches
   bit-rot; this layer catches state that is well-formed on the wire
   but architecturally impossible — the "CRC-preserving" corruption a
   buggy or hostile encoder could produce. *)

type diagnostic = {
  diag_section : string;
  diag_offset : int option;
  diag_reason : string;
  diag_fatal : bool;
}

type verdict =
  | Intact
  | Salvaged of diagnostic list
  | Rejected of diagnostic

type report = {
  verdict : verdict;
  state : Vm_state.t option;
  sections_total : int;
  sections_ok : int;
}

let diag ?offset ~section ~fatal reason =
  { diag_section = section; diag_offset = offset; diag_reason = reason;
    diag_fatal = fatal }

let pp_diagnostic fmt d =
  Diag.pp fmt
    ~label:(if d.diag_fatal then "fatal" else "salvageable")
    ~subject:d.diag_section ?offset:d.diag_offset d.diag_reason

let pp_verdict fmt = function
  | Intact -> Format.pp_print_string fmt "intact"
  | Salvaged ds -> Format.fprintf fmt "salvaged (%d diagnostics)" (List.length ds)
  | Rejected d -> Format.fprintf fmt "rejected (%a)" pp_diagnostic d

let pp_report fmt r =
  Format.fprintf fmt "%a, %d/%d sections ok" pp_verdict r.verdict r.sections_ok
    r.sections_total

let diagnostics r =
  match r.verdict with
  | Intact -> []
  | Salvaged ds -> ds
  | Rejected d -> [ d ]

(* --- substitute state for salvageable sections --- *)

let default_pit : Vmstate.Pit.t =
  let ch mode =
    { Vmstate.Pit.count = 0; latched_count = 0; status = 0; read_state = 0;
      write_state = 0; mode; bcd = false; gate = true }
  in
  (* Power-on-ish: channel 0 as the rate generator for the tick. *)
  { channels = [| ch 2; ch 0; ch 0 |]; speaker_data_on = false }

let default_ioapic ~pins : Vmstate.Ioapic.t =
  let masked =
    { Vmstate.Ioapic.vector = 0; delivery_mode = 0; dest_mode = 0;
      polarity = 0; trigger_mode = 0; masked = true; dest = 0 }
  in
  { id = 0; pins = Array.make (max pins 1) masked }

(* --- semantic validation --- *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_lapic ~section (l : Vmstate.Lapic.t) acc =
  let acc =
    if Array.length l.isr <> 4 || Array.length l.irr <> 4
       || Array.length l.tmr <> 4
    then diag ~section ~fatal:true "LAPIC ISR/IRR/TMR must be 256-bit" :: acc
    else begin
      (* Vectors 0-15 are architecturally illegal interrupt vectors. *)
      let low16 w = Int64.logand w.(0) 0xFFFFL in
      let bad name w =
        if not (Int64.equal (low16 w) 0L) then
          Some (diag ~section ~fatal:true
                  (Printf.sprintf "LAPIC %s has illegal vectors < 16" name))
        else None
      in
      List.filter_map Fun.id
        [ bad "ISR" l.isr; bad "IRR" l.irr; bad "TMR" l.tmr ]
      @ acc
    end
  in
  if Array.length l.lvt <> 7 then
    diag ~section ~fatal:true
      (Printf.sprintf "LAPIC LVT has %d entries, expected 7"
         (Array.length l.lvt))
    :: acc
  else acc

let mtrr_type_valid t = t = 0 || t = 1 || t = 4 || t = 5 || t = 6

let validate_mtrr ~section (m : Vmstate.Mtrr.t) acc =
  let acc =
    if Array.length m.fixed <> Vmstate.Mtrr.fixed_count then
      diag ~section ~fatal:true
        (Printf.sprintf "MTRR has %d fixed registers, expected %d"
           (Array.length m.fixed) Vmstate.Mtrr.fixed_count)
      :: acc
    else acc
  in
  let acc =
    if Array.length m.variable <> Vmstate.Mtrr.variable_count then
      diag ~section ~fatal:true
        (Printf.sprintf "MTRR has %d variable ranges, expected %d"
           (Array.length m.variable) Vmstate.Mtrr.variable_count)
      :: acc
    else acc
  in
  let acc =
    if not (mtrr_type_valid (m.def_type land 0xFF)) then
      diag ~section ~fatal:true
        (Printf.sprintf "MTRR default memory type %d invalid"
           (m.def_type land 0xFF))
      :: acc
    else acc
  in
  let valid_ranges =
    Array.to_list m.variable
    |> List.filter (fun (r : Vmstate.Mtrr.variable_range) ->
           Int64.logand r.mask 0x800L <> 0L)
  in
  let acc =
    List.fold_left
      (fun acc (r : Vmstate.Mtrr.variable_range) ->
        let ty = Int64.to_int (Int64.logand r.base 0xFFL) in
        if not (mtrr_type_valid ty) then
          diag ~section ~fatal:true
            (Printf.sprintf "MTRR variable range memory type %d invalid" ty)
          :: acc
        else if Int64.logand r.base 0xF00L <> 0L then
          diag ~section ~fatal:true "MTRR variable range base reserved bits set"
          :: acc
        else acc)
      acc valid_ranges
  in
  (* Overlap rule: two valid ranges that can cover the same address must
     agree on type unless one of them is UC (which always wins). *)
  let addr_bits = 0xFFFFFF000L in
  let rec overlaps acc = function
    | [] -> acc
    | (a : Vmstate.Mtrr.variable_range) :: rest ->
      let acc =
        List.fold_left
          (fun acc (b : Vmstate.Mtrr.variable_range) ->
            let m =
              Int64.logand addr_bits (Int64.logand a.mask b.mask)
            in
            let same_region =
              Int64.equal (Int64.logand a.base m) (Int64.logand b.base m)
            in
            let ta = Int64.to_int (Int64.logand a.base 0xFFL) in
            let tb = Int64.to_int (Int64.logand b.base 0xFFL) in
            if same_region && ta <> tb && ta <> 0 && tb <> 0 then
              diag ~section ~fatal:true
                (Printf.sprintf
                   "overlapping MTRR ranges with conflicting types %d/%d" ta tb)
              :: acc
            else acc)
          acc rest
      in
      overlaps acc rest
  in
  overlaps acc valid_ranges

let validate_xsave ~section (x : Vmstate.Xsave.t) acc =
  let acc =
    if Int64.logand x.xcr0 1L = 0L then
      diag ~section ~fatal:true "XCR0 bit 0 (x87) must be set" :: acc
    else acc
  in
  let acc =
    if Int64.logand x.xstate_bv (Int64.lognot x.xcr0) <> 0L then
      diag ~section ~fatal:true "XSTATE_BV enables components outside XCR0"
      :: acc
    else acc
  in
  let rec comps prev acc = function
    | [] -> acc
    | (c : Vmstate.Xsave.component) :: rest ->
      let acc =
        if c.id < 0 || c.id > 62 then
          diag ~section ~fatal:true
            (Printf.sprintf "XSAVE component id %d out of range" c.id)
          :: acc
        else if c.id <= prev then
          diag ~section ~fatal:true
            (Printf.sprintf "XSAVE component ids not strictly increasing at %d"
               c.id)
          :: acc
        else if Int64.logand x.xstate_bv (Int64.shift_left 1L c.id) = 0L then
          diag ~section ~fatal:true
            (Printf.sprintf "XSAVE component %d not enabled in XSTATE_BV" c.id)
          :: acc
        else if Array.length c.data <> Vmstate.Xsave.component_words c.id then
          diag ~section ~fatal:true
            (Printf.sprintf
               "XSAVE component %d area is %d words, architecture says %d" c.id
               (Array.length c.data)
               (Vmstate.Xsave.component_words c.id))
          :: acc
        else acc
      in
      comps (max prev c.id) acc rest
  in
  comps (-1) acc x.components

let validate_vcpus t acc =
  match t.Vm_state.vcpus with
  | [] ->
    [ diag ~section:"vcpu" ~fatal:true "VM has no vCPUs" ]
  | vcpus ->
    let seen = Hashtbl.create 8 in
    List.fold_left
      (fun acc (v : Vmstate.Vcpu.t) ->
        let section = Printf.sprintf "vcpu[%d]" v.index in
        let acc =
          if Hashtbl.mem seen v.index then
            diag ~section ~fatal:true
              (Printf.sprintf "duplicate vCPU index %d" v.index)
            :: acc
          else begin
            Hashtbl.add seen v.index ();
            acc
          end
        in
        acc
        |> validate_lapic ~section v.lapic
        |> validate_mtrr ~section v.mtrr
        |> validate_xsave ~section v.xsave)
      acc vcpus

let validate_ioapic (io : Vmstate.Ioapic.t) acc =
  let section = "ioapic" in
  let acc =
    if Array.length io.pins = 0 then
      diag ~section ~fatal:false "IOAPIC has no pins" :: acc
    else acc
  in
  Array.to_list io.pins
  |> List.mapi (fun i p -> (i, p))
  |> List.fold_left
       (fun acc (i, (p : Vmstate.Ioapic.redirection)) ->
         if p.delivery_mode > 7 || p.dest_mode > 1 || p.polarity > 1
            || p.trigger_mode > 1
         then
           diag ~section ~fatal:false
             (Printf.sprintf "pin %d has out-of-range redirection fields" i)
           :: acc
         else if (not p.masked) && p.vector < 0x10 then
           diag ~section ~fatal:false
             (Printf.sprintf "unmasked pin %d routes illegal vector %d" i
                p.vector)
           :: acc
         else acc)
       acc

let validate_pit (p : Vmstate.Pit.t) acc =
  if Array.length p.channels <> 3 then
    diag ~section:"pit" ~fatal:false
      (Printf.sprintf "PIT has %d channels, expected 3"
         (Array.length p.channels))
    :: acc
  else acc

let validate_devices t acc =
  let section = "devices" in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (d : Vm_state.device_snapshot) ->
      let acc =
        if Hashtbl.mem seen d.dev_id then
          diag ~section ~fatal:true
            (Printf.sprintf "duplicate device id %d" d.dev_id)
          :: acc
        else begin
          Hashtbl.add seen d.dev_id ();
          acc
        end
      in
      let acc =
        if d.dev_unplugged
           && (Array.length d.dev_emulation_state > 0
              || Array.length d.dev_queues > 0)
        then
          diag ~section ~fatal:true
            (Printf.sprintf "unplugged device %d still carries state" d.dev_id)
          :: acc
        else acc
      in
      (* Every serialized queue must be a decodable virtqueue with sane
         indices (of_words checks ring size, framing and used<=avail). *)
      Array.to_list d.dev_queues
      |> List.mapi (fun qi q -> (qi, q))
      |> List.fold_left
           (fun acc (qi, q) ->
             match Vmstate.Virtqueue.of_words q with
             | (_ : Vmstate.Virtqueue.t) -> acc
             | exception Invalid_argument msg ->
               diag ~section ~fatal:true
                 (Printf.sprintf "device %d queue %d: %s" d.dev_id qi msg)
               :: acc)
           acc)
    acc t.Vm_state.devices

let validate_memmap ?frame_ok t acc =
  let section = "memmap" in
  let entries = t.Vm_state.memmap in
  let acc =
    List.fold_left
      (fun acc (e : Vm_state.memmap_entry) ->
        if not (is_pow2 e.frames) then
          diag ~section ~fatal:true
            (Printf.sprintf "entry at gfn %d has non-power-of-two size %d"
               (Hw.Frame.Gfn.to_int e.gfn) e.frames)
          :: acc
        else acc)
      acc entries
  in
  let sorted =
    List.sort
      (fun (a : Vm_state.memmap_entry) b ->
        compare (Hw.Frame.Gfn.to_int a.gfn) (Hw.Frame.Gfn.to_int b.gfn))
      entries
  in
  let rec disjoint acc = function
    | (a : Vm_state.memmap_entry) :: (b :: _ as rest) ->
      let acc =
        if Hw.Frame.Gfn.to_int a.gfn + a.frames > Hw.Frame.Gfn.to_int b.gfn
        then
          diag ~section ~fatal:true
            (Printf.sprintf "entries overlap at gfn %d"
               (Hw.Frame.Gfn.to_int b.gfn))
          :: acc
        else acc
      in
      disjoint acc rest
    | _ -> acc
  in
  let acc = disjoint acc sorted in
  let expected = Hw.Units.frames_of_bytes t.Vm_state.ram_bytes in
  let total = Vm_state.total_mapped_frames t in
  let acc =
    if total <> expected then
      diag ~section ~fatal:true
        (Printf.sprintf "maps %d frames but the VM has %d frames of RAM" total
           expected)
      :: acc
    else acc
  in
  match frame_ok with
  | None -> acc
  | Some ok ->
    List.fold_left
      (fun acc (e : Vm_state.memmap_entry) ->
        let rec check i =
          if i >= e.frames then None
          else if not (ok (Hw.Frame.Mfn.add e.mfn i)) then Some i
          else check (i + 1)
        in
        match check 0 with
        | None -> acc
        | Some i ->
          diag ~section ~fatal:true
            (Printf.sprintf
               "mfn %d not resolvable in the PRAM-preserved frame map"
               (Hw.Frame.Mfn.to_int (Hw.Frame.Mfn.add e.mfn i)))
          :: acc)
      acc entries

let validate_vm_info t acc =
  let section = "vm_info" in
  let acc =
    if String.length t.Vm_state.vm_name = 0 then
      diag ~section ~fatal:true "empty VM name" :: acc
    else acc
  in
  if t.Vm_state.ram_bytes <= 0 then
    diag ~section ~fatal:true "non-positive RAM size" :: acc
  else acc

let validate ?frame_ok (t : Vm_state.t) =
  []
  |> validate_vm_info t
  |> validate_vcpus t
  |> validate_ioapic t.ioapic
  |> validate_pit t.pit
  |> validate_devices t
  |> validate_memmap ?frame_ok t
  |> List.rev

let verdict_of ~outer_ok ~scan_diags ~semantic_diags ~state ~sections_total
    ~sections_ok =
  let diags = scan_diags @ semantic_diags in
  match List.find_opt (fun d -> d.diag_fatal) diags with
  | Some d -> { verdict = Rejected d; state = None; sections_total; sections_ok }
  | None ->
    if diags = [] && outer_ok then
      { verdict = Intact; state = Some state; sections_total; sections_ok }
    else
      let diags =
        if outer_ok then diags
        else
          diag ~section:"envelope" ~fatal:false
            "outer CRC mismatch (recovered from per-section checksums)"
          :: diags
      in
      { verdict = Salvaged diags; state = Some state; sections_total;
        sections_ok }

let rejected ?offset ~section ~sections_total ~sections_ok reason =
  { verdict = Rejected (diag ?offset ~section ~fatal:true reason);
    state = None; sections_total; sections_ok }
