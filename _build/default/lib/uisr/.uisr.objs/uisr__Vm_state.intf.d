lib/uisr/vm_state.mli: Format Hw Vmstate
